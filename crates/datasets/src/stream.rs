//! Sharded corpus directories and the [`StreamingDataset`] that reads
//! them without ever materializing an epoch.
//!
//! A corpus directory is a `manifest.json` plus one or more `.mshard`
//! files (see [`crate::shard`] and `docs/SHARD_FORMAT.md`). The writer
//! streams samples from any source — a generator, a `.jsonl` parse, an
//! iterator — through one bounded [`ShardWriter`] at a time, so writing a
//! 10M-structure corpus costs one shard of memory, not ten million
//! samples. The reader side is a [`Dataset`] implementation over the
//! shard set: global index → (shard, local index) via binary search,
//! shards opened lazily and held in a small LRU of memory maps, records
//! decoded on demand. Every downstream consumer — trainer, collate
//! cache, serve path — works unchanged.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use crate::sample::{Dataset, DatasetId, Sample};
use crate::shard::{ShardError, ShardReader, ShardWriter};

/// Manifest format identifier (bumped only on incompatible change).
pub const MANIFEST_FORMAT: &str = "matsciml-shard/v1";

/// Counter name: shard files opened (mapped or buffered).
pub const DATA_SHARD_OPEN: &str = "data/shard_open";

/// Counter name: encoded record bytes decoded from shard storage.
pub const DATA_STREAM_BYTES: &str = "data/stream_bytes";

/// One shard file as listed in `manifest.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardEntry {
    /// File name relative to the corpus directory.
    pub file: String,
    /// Records in the shard.
    pub samples: u64,
    /// File size in bytes.
    pub bytes: u64,
    /// The shard's trailing whole-file CRC-32.
    pub crc32: u32,
}

/// The corpus directory's `manifest.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardManifest {
    /// Always [`MANIFEST_FORMAT`].
    pub format: String,
    /// Dataset name ([`DatasetId::name`]; `"mixed"` for blended corpora).
    pub dataset: String,
    /// Total records across all shards.
    pub total_samples: u64,
    /// Target records per shard the writer was configured with (the last
    /// shard may hold fewer).
    pub shard_samples: u64,
    /// The shard files, in global index order.
    pub shards: Vec<ShardEntry>,
}

impl ShardManifest {
    /// Parse `manifest.json` from a corpus directory.
    pub fn load(dir: impl AsRef<Path>) -> Result<Self, ShardError> {
        let path = dir.as_ref().join("manifest.json");
        let text = std::fs::read_to_string(&path)?;
        let m: ShardManifest = serde_json::from_str(&text)
            .map_err(|e| ShardError::Malformed(format!("{}: {e}", path.display())))?;
        if m.format != MANIFEST_FORMAT {
            return Err(ShardError::Malformed(format!(
                "{}: manifest format `{}` is not `{MANIFEST_FORMAT}`",
                path.display(),
                m.format
            )));
        }
        if m.shards.is_empty() {
            return Err(ShardError::Malformed(format!(
                "{}: manifest lists no shards",
                path.display()
            )));
        }
        let sum: u64 = m.shards.iter().map(|s| s.samples).sum();
        if sum != m.total_samples {
            return Err(ShardError::Malformed(format!(
                "{}: shard sample counts sum to {sum}, manifest claims {}",
                path.display(),
                m.total_samples
            )));
        }
        Ok(m)
    }

    /// Write `manifest.json` into `dir`.
    pub fn save(&self, dir: impl AsRef<Path>) -> Result<(), ShardError> {
        let path = dir.as_ref().join("manifest.json");
        let text = serde_json::to_string_pretty(self)
            .map_err(|e| ShardError::Malformed(format!("manifest serialization: {e}")))?;
        std::fs::write(&path, text + "\n")?;
        Ok(())
    }
}

/// Knobs for [`write_corpus`] / [`write_corpus_iter`].
#[derive(Debug, Clone, Copy)]
pub struct CorpusWriteOptions {
    /// Records per shard (the last shard holds the remainder).
    pub shard_samples: usize,
    /// Re-open and CRC-verify every shard after writing it.
    pub verify: bool,
    /// Shard write workers. `1` (the default) writes serially on the
    /// calling thread. With more, full shards are handed to a bounded
    /// worker pool that encodes, writes, and verifies them while the
    /// producer keeps filling the next shard. Output is byte-identical
    /// to the serial writer — each shard's bytes and file name depend
    /// only on its own records and position — at the cost of holding up
    /// to roughly `workers + 2` shards in memory instead of one.
    pub workers: usize,
}

impl Default for CorpusWriteOptions {
    fn default() -> Self {
        // 64k LiPS-sized records ≈ 40 MB per shard: large enough that a
        // million-structure corpus stays in the tens of files, small
        // enough that the writer's working set is trivial.
        CorpusWriteOptions { shard_samples: 65_536, verify: false, workers: 1 }
    }
}

fn shard_file_name(index: usize) -> String {
    format!("shard-{index:05}.{}", crate::shard::SHARD_EXT)
}

/// Write `dataset` into `dir` as a sharded corpus (directory created;
/// an existing `manifest.json` is overwritten). Returns the manifest.
pub fn write_corpus(
    dataset: &dyn Dataset,
    dir: impl AsRef<Path>,
    options: CorpusWriteOptions,
) -> Result<ShardManifest, ShardError> {
    let n = dataset.len();
    write_corpus_iter((0..n).map(|i| dataset.sample(i)), dir, options)
}

/// Stream any sample iterator into `dir` as a sharded corpus. Memory is
/// bounded by one shard regardless of corpus size; the manifest's
/// dataset id is derived from the samples themselves (`"mixed"` when
/// provenance varies). Errors on an empty iterator (a corpus must hold
/// at least one sample).
pub fn write_corpus_iter(
    samples: impl IntoIterator<Item = Sample>,
    dir: impl AsRef<Path>,
    options: CorpusWriteOptions,
) -> Result<ShardManifest, ShardError> {
    assert!(options.shard_samples > 0, "shard_samples must be positive");
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    if options.workers > 1 {
        return write_corpus_parallel(samples, dir, options);
    }
    let mut shards = Vec::new();
    let mut corpus_id: Option<DatasetId> = None;
    let mut writer = ShardWriter::new();
    let mut flush = |writer: &mut ShardWriter,
                     shards: &mut Vec<ShardEntry>|
     -> Result<(), ShardError> {
        let Some(shard_id) = writer.dataset() else {
            return Ok(()); // empty writer, nothing to flush
        };
        corpus_id = Some(match corpus_id {
            None => shard_id,
            Some(d) if d == shard_id => d,
            Some(_) => DatasetId::Mixed,
        });
        let file = shard_file_name(shards.len());
        let path = dir.join(&file);
        let info = writer.write(&path)?;
        if options.verify {
            ShardReader::open(&path)?.verify()?;
        }
        shards.push(ShardEntry {
            file,
            samples: info.samples,
            bytes: info.bytes,
            crc32: info.crc32,
        });
        *writer = ShardWriter::new();
        Ok(())
    };
    for sample in samples {
        writer.push(&sample);
        if writer.len() >= options.shard_samples {
            flush(&mut writer, &mut shards)?;
        }
    }
    flush(&mut writer, &mut shards)?;
    let Some(corpus_id) = corpus_id else {
        return Err(ShardError::Malformed(
            "refusing to write an empty corpus (no samples)".into(),
        ));
    };
    let manifest = ShardManifest {
        format: MANIFEST_FORMAT.into(),
        dataset: corpus_id.name().into(),
        total_samples: shards.iter().map(|s| s.samples).sum(),
        shard_samples: options.shard_samples as u64,
        shards,
    };
    manifest.save(dir)?;
    Ok(manifest)
}


/// The `workers > 1` body of [`write_corpus_iter`]: a producer/pool
/// pipeline over whole shards. The producer (the calling thread) fills
/// one [`ShardWriter`] at a time and hands each full shard, tagged with
/// its index, to the pool; workers encode/write/verify concurrently.
/// Shard contents are independent and file names are positional, so the
/// on-disk corpus is byte-identical to the serial writer's.
fn write_corpus_parallel(
    samples: impl IntoIterator<Item = Sample>,
    dir: &Path,
    options: CorpusWriteOptions,
) -> Result<ShardManifest, ShardError> {
    use std::sync::mpsc;

    type ShardResult = Result<(DatasetId, ShardEntry), ShardError>;

    // Capacity 1 keeps memory bounded: at most `workers` shards in
    // flight plus one queued plus the one being filled.
    let (job_tx, job_rx) = mpsc::sync_channel::<(usize, ShardWriter)>(1);
    let job_rx = Arc::new(Mutex::new(job_rx));
    let (res_tx, res_rx) = mpsc::channel::<(usize, ShardResult)>();

    let (count, mut results) = std::thread::scope(|scope| {
        for _ in 0..options.workers {
            let job_rx = Arc::clone(&job_rx);
            let res_tx = res_tx.clone();
            scope.spawn(move || loop {
                let job = job_rx.lock().expect("shard job lock").recv();
                let Ok((index, writer)) = job else { break };
                let result = (|| {
                    let shard_id = writer.dataset().expect("pool only receives non-empty shards");
                    let file = shard_file_name(index);
                    let path = dir.join(&file);
                    let info = writer.write(&path)?;
                    if options.verify {
                        ShardReader::open(&path)?.verify()?;
                    }
                    Ok((
                        shard_id,
                        ShardEntry {
                            file,
                            samples: info.samples,
                            bytes: info.bytes,
                            crc32: info.crc32,
                        },
                    ))
                })();
                if res_tx.send((index, result)).is_err() {
                    break;
                }
            });
        }
        drop(res_tx);

        let mut next = 0usize;
        let mut writer = ShardWriter::new();
        for sample in samples {
            writer.push(&sample);
            if writer.len() >= options.shard_samples {
                let full = std::mem::replace(&mut writer, ShardWriter::new());
                // Send fails only when every worker died; their error
                // reports are in the result channel.
                if job_tx.send((next, full)).is_err() {
                    break;
                }
                next += 1;
            }
        }
        if !writer.is_empty() && job_tx.send((next, writer)).is_ok() {
            next += 1;
        }
        drop(job_tx);

        let mut results: Vec<Option<ShardResult>> = (0..next).map(|_| None).collect();
        for (index, result) in res_rx {
            results[index] = Some(result);
        }
        (next, results)
    });

    let mut shards = Vec::with_capacity(count);
    let mut corpus_id: Option<DatasetId> = None;
    for slot in results.iter_mut() {
        let (shard_id, entry) = slot
            .take()
            .expect("every dispatched shard reports a result")?;
        corpus_id = Some(match corpus_id {
            None => shard_id,
            Some(d) if d == shard_id => d,
            Some(_) => DatasetId::Mixed,
        });
        shards.push(entry);
    }
    let Some(corpus_id) = corpus_id else {
        return Err(ShardError::Malformed(
            "refusing to write an empty corpus (no samples)".into(),
        ));
    };
    let manifest = ShardManifest {
        format: MANIFEST_FORMAT.into(),
        dataset: corpus_id.name().into(),
        total_samples: shards.iter().map(|s| s.samples).sum(),
        shard_samples: options.shard_samples as u64,
        shards,
    };
    manifest.save(dir)?;
    Ok(manifest)
}

/// How many shards a [`StreamingDataset`] keeps open at once by default.
/// Each open shard is a memory map (cheap) or a buffered file (one
/// allocation), so the bound exists to cap file descriptors and buffered
/// memory, not map count.
pub const DEFAULT_MAX_OPEN: usize = 8;

/// Default sample interval between `madvise(MADV_DONTNEED)` residency
/// hints on mapped shards (see [`StreamingDataset::set_advise_every`]).
pub const DEFAULT_ADVISE_EVERY: u64 = 65_536;

struct OpenShards {
    /// `readers[i]` is shard `i` when open.
    readers: Vec<Option<Arc<ShardReader>>>,
    /// Open shard indices, least recently used first.
    lru: Vec<usize>,
}

/// A [`Dataset`] over a sharded corpus directory: random access by global
/// index, shards opened lazily into a bounded LRU, records decoded on
/// demand from (usually memory-mapped) storage. Cloning is cheap and the
/// clone shares the open-shard cache, so reader threads spawned by the
/// read-ahead pipeline amortize shard opens.
#[derive(Clone)]
pub struct StreamingDataset {
    inner: Arc<StreamingInner>,
}

struct StreamingInner {
    dir: PathBuf,
    manifest: ShardManifest,
    dataset: DatasetId,
    /// `starts[i]` = global index of shard `i`'s first record;
    /// `starts[n]` = total.
    starts: Vec<u64>,
    open: Mutex<OpenShards>,
    max_open: usize,
    obs: matsciml_obs::Obs,
    /// Samples decoded since the last residency hint (0 disables hints).
    advise_every: u64,
    since_advise: AtomicU64,
}

impl StreamingDataset {
    /// Open a corpus directory (validates the manifest; shards open
    /// lazily on first access, so this is O(manifest)).
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, ShardError> {
        Self::open_with(dir, DEFAULT_MAX_OPEN, matsciml_obs::Obs::disabled())
    }

    /// [`StreamingDataset::open`] with an explicit open-shard bound and an
    /// observability handle for the `data/*` streaming counters.
    pub fn open_with(
        dir: impl AsRef<Path>,
        max_open: usize,
        obs: matsciml_obs::Obs,
    ) -> Result<Self, ShardError> {
        assert!(max_open > 0, "max_open must be positive");
        let dir = dir.as_ref().to_path_buf();
        let manifest = ShardManifest::load(&dir)?;
        let dataset = DatasetId::from_name(&manifest.dataset).ok_or_else(|| {
            ShardError::Malformed(format!("unknown dataset name `{}`", manifest.dataset))
        })?;
        let mut starts = Vec::with_capacity(manifest.shards.len() + 1);
        let mut acc = 0u64;
        for s in &manifest.shards {
            starts.push(acc);
            acc += s.samples;
        }
        starts.push(acc);
        let nshards = manifest.shards.len();
        let advise_every = match std::env::var("MATSCIML_STREAM_ADVISE").ok() {
            Some(v) => v.parse::<u64>().map_err(|_| {
                ShardError::Malformed(format!("MATSCIML_STREAM_ADVISE=`{v}` is not an integer"))
            })?,
            None => DEFAULT_ADVISE_EVERY,
        };
        Ok(StreamingDataset {
            inner: Arc::new(StreamingInner {
                dir,
                manifest,
                dataset,
                starts,
                open: Mutex::new(OpenShards {
                    readers: (0..nshards).map(|_| None).collect(),
                    lru: Vec::new(),
                }),
                max_open,
                obs,
                advise_every,
                since_advise: AtomicU64::new(0),
            }),
        })
    }

    /// The corpus manifest.
    pub fn manifest(&self) -> &ShardManifest {
        &self.inner.manifest
    }

    /// The corpus directory.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// Number of shard files.
    pub fn num_shards(&self) -> usize {
        self.inner.manifest.shards.len()
    }

    /// Override the residency-hint cadence: after every `every` decoded
    /// samples, the shard that served the sample gets
    /// [`ShardReader::advise_dontneed`], bounding mapped-page residency
    /// over long streams. `0` disables hints. The environment variable
    /// `MATSCIML_STREAM_ADVISE` sets the initial value
    /// (default [`DEFAULT_ADVISE_EVERY`]).
    pub fn set_advise_every(&mut self, every: u64) {
        // Sole-owner mutation; clones made afterwards share the setting.
        Arc::get_mut(&mut self.inner)
            .expect("set_advise_every before cloning/sharing")
            .advise_every = every;
    }

    /// Map a global index to `(shard, local index)`.
    fn locate(&self, index: usize) -> (usize, usize) {
        let starts = &self.inner.starts;
        let idx = index as u64;
        assert!(
            idx < *starts.last().expect("nonempty starts"),
            "index {index} out of range for {} samples",
            starts.last().expect("nonempty starts")
        );
        let shard = match starts.binary_search(&idx) {
            Ok(k) => k,
            Err(k) => k - 1,
        };
        (shard, (idx - starts[shard]) as usize)
    }

    /// Fetch shard `i` from the LRU, opening (and possibly evicting) under
    /// the lock. Open errors panic: the manifest promised this shard, so a
    /// failure mid-run is corruption, not a recoverable condition.
    fn reader(&self, shard: usize) -> Arc<ShardReader> {
        let inner = &self.inner;
        let mut open = inner.open.lock().expect("shard cache lock");
        if let Some(r) = &open.readers[shard] {
            let r = Arc::clone(r);
            // Refresh recency.
            if let Some(pos) = open.lru.iter().position(|&s| s == shard) {
                open.lru.remove(pos);
            }
            open.lru.push(shard);
            return r;
        }
        if open.lru.len() >= inner.max_open {
            let evict = open.lru.remove(0);
            open.readers[evict] = None;
        }
        let path = inner.dir.join(&inner.manifest.shards[shard].file);
        let reader = ShardReader::open(&path).unwrap_or_else(|e| {
            panic!("failed to open shard {}: {e}", path.display());
        });
        inner.obs.count(DATA_SHARD_OPEN, 1);
        let reader = Arc::new(reader);
        open.readers[shard] = Some(Arc::clone(&reader));
        open.lru.push(shard);
        reader
    }

    /// [`Dataset::sample`] with typed errors instead of panics — the
    /// probe-friendly path for tools (`shard-write --verify`, tests).
    pub fn try_sample(&self, index: usize) -> Result<Sample, ShardError> {
        let (shard, local) = self.locate(index);
        let reader = self.reader(shard);
        let bytes = reader.record_bytes(local)?;
        let n = bytes.len() as u64;
        let sample = crate::shard::decode_record(bytes)?;
        let inner = &self.inner;
        inner.obs.count(DATA_STREAM_BYTES, n);
        if inner.advise_every > 0 {
            let prev = inner.since_advise.fetch_add(1, Ordering::Relaxed);
            if prev + 1 >= inner.advise_every {
                inner.since_advise.store(0, Ordering::Relaxed);
                reader.advise_dontneed();
            }
        }
        Ok(sample)
    }
}

impl Dataset for StreamingDataset {
    fn id(&self) -> DatasetId {
        self.inner.dataset
    }

    fn len(&self) -> usize {
        *self.inner.starts.last().expect("nonempty starts") as usize
    }

    fn sample(&self, index: usize) -> Sample {
        self.try_sample(index)
            .unwrap_or_else(|e| panic!("streaming sample {index}: {e}"))
    }
}

/// Cross-check a precomputed-edge corpus against a fresh graph rebuild.
///
/// Visits up to `max_checks` records spread evenly across the corpus;
/// for each, strips the stored edge list, re-runs `graph_stage` (the
/// same [`crate::GraphTransform`] the corpus was written with) on the
/// stored positions, and requires the rebuilt `src`/`dst` vectors to
/// match the stored ones exactly. Returns the number of records
/// checked; the first disagreement aborts with
/// [`ShardError::EdgeMismatch`].
///
/// Only the graph stage re-runs: stored positions already went through
/// the full write-time pipeline (centering included), and re-centering
/// an already-centered cloud shifts positions by f32 rounding, which
/// would defeat the exact comparison this check exists to make.
pub fn verify_precomputed_edges(
    dir: impl AsRef<Path>,
    graph_stage: &dyn crate::transform::Transform,
    max_checks: usize,
) -> Result<usize, ShardError> {
    let ds = StreamingDataset::open(dir)?;
    let total = ds.len();
    if total == 0 || max_checks == 0 {
        return Ok(0);
    }
    let stride = total.div_ceil(max_checks).max(1);
    let mut checked = 0;
    let mut index = 0;
    while index < total {
        let stored = ds.try_sample(index)?;
        let mut stripped = stored.clone();
        stripped.graph.src.clear();
        stripped.graph.dst.clear();
        let rebuilt = graph_stage.apply(stripped);
        if rebuilt.graph.src != stored.graph.src || rebuilt.graph.dst != stored.graph.dst {
            return Err(ShardError::EdgeMismatch {
                index,
                stored_edges: stored.graph.num_edges(),
                rebuilt_edges: rebuilt.graph.num_edges(),
            });
        }
        checked += 1;
        index += stride;
    }
    Ok(checked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{SyntheticLips, SyntheticMaterialsProject};

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("matsciml-stream-test-{name}-{}", std::process::id()))
    }

    #[test]
    fn corpus_roundtrips_through_shards() {
        let dir = tmp("roundtrip");
        let ds = SyntheticMaterialsProject::new(23, 5);
        let opts = CorpusWriteOptions { shard_samples: 10, verify: true, workers: 1 };
        let manifest = write_corpus(&ds, &dir, opts).unwrap();
        assert_eq!(manifest.total_samples, 23);
        assert_eq!(manifest.shards.len(), 3, "23 samples at 10/shard → 10+10+3");
        assert_eq!(manifest.shards[2].samples, 3);

        let stream = StreamingDataset::open(&dir).unwrap();
        assert_eq!(stream.len(), 23);
        assert_eq!(stream.id(), DatasetId::MaterialsProject);
        assert_eq!(stream.num_shards(), 3);
        for i in 0..23 {
            assert_eq!(
                serde_json::to_string(&ds.sample(i)).unwrap(),
                serde_json::to_string(&stream.sample(i)).unwrap(),
                "streamed sample {i} must equal the generator's"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lru_bounds_open_shards_and_counts_opens() {
        let dir = tmp("lru");
        let ds = SyntheticLips::new(12, 9);
        write_corpus(&ds, &dir, CorpusWriteOptions { shard_samples: 2, verify: false, workers: 1 }).unwrap();
        let obs = matsciml_obs::Obs::null();
        let stream = StreamingDataset::open_with(&dir, 2, obs.clone()).unwrap();
        assert_eq!(stream.num_shards(), 6);
        // Forward sweep touches every shard once: 6 opens.
        for i in 0..12 {
            stream.sample(i);
        }
        assert_eq!(obs.counter(DATA_SHARD_OPEN), 6);
        // Re-reading the last two shards hits the LRU: no new opens.
        stream.sample(11);
        stream.sample(8);
        assert_eq!(obs.counter(DATA_SHARD_OPEN), 6);
        // Reading shard 0 again evicts and reopens: one more.
        stream.sample(0);
        assert_eq!(obs.counter(DATA_SHARD_OPEN), 7);
        assert!(obs.counter(DATA_STREAM_BYTES) > 0, "byte counter advances");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parallel_writer_is_byte_identical_to_serial() {
        let serial_dir = tmp("par-serial");
        let parallel_dir = tmp("par-pool");
        // 23 samples at 4/shard → 6 shards, last one ragged.
        let ds = SyntheticMaterialsProject::new(23, 11);
        let serial = write_corpus(
            &ds,
            &serial_dir,
            CorpusWriteOptions { shard_samples: 4, verify: true, workers: 1 },
        )
        .unwrap();
        let parallel = write_corpus(
            &ds,
            &parallel_dir,
            CorpusWriteOptions { shard_samples: 4, verify: true, workers: 3 },
        )
        .unwrap();
        assert_eq!(serial.shards.len(), 6);
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&parallel).unwrap(),
            "manifests must match field for field"
        );
        for entry in &serial.shards {
            let a = std::fs::read(serial_dir.join(&entry.file)).unwrap();
            let b = std::fs::read(parallel_dir.join(&entry.file)).unwrap();
            assert_eq!(a, b, "{}: parallel bytes differ from serial", entry.file);
        }
        // And the parallel corpus reads back exactly.
        let stream = StreamingDataset::open(&parallel_dir).unwrap();
        for i in 0..23 {
            assert_eq!(
                serde_json::to_string(&ds.sample(i)).unwrap(),
                serde_json::to_string(&stream.sample(i)).unwrap(),
            );
        }
        std::fs::remove_dir_all(&serial_dir).ok();
        std::fs::remove_dir_all(&parallel_dir).ok();
    }

    #[test]
    fn manifest_validation_rejects_tampering() {
        let dir = tmp("tamper");
        let ds = SyntheticMaterialsProject::new(4, 1);
        write_corpus(&ds, &dir, CorpusWriteOptions { shard_samples: 2, verify: false, workers: 1 }).unwrap();
        let path = dir.join("manifest.json");
        let good = std::fs::read_to_string(&path).unwrap();

        // Wrong format string.
        std::fs::write(&path, good.replace(MANIFEST_FORMAT, "matsciml-shard/v9")).unwrap();
        assert!(matches!(StreamingDataset::open(&dir), Err(ShardError::Malformed(_))));

        // Sample-count sum mismatch.
        std::fs::write(&path, good.replace("\"total_samples\": 4", "\"total_samples\": 5")).unwrap();
        assert!(matches!(StreamingDataset::open(&dir), Err(ShardError::Malformed(_))));

        // Missing manifest.
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(StreamingDataset::open(&dir), Err(ShardError::Io(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn precomputed_corpus_roundtrips_and_cross_checks() {
        use crate::transform::{Compose, GraphTransform, Transform};
        let dir = tmp("precomp");
        let ds = SyntheticLips::new(14, 7);
        let pipeline = Compose::standard(9.0, Some(12));
        let opts = CorpusWriteOptions { shard_samples: 5, verify: true, workers: 1 };
        let samples = (0..ds.len()).map(|i| pipeline.apply(ds.sample(i)));
        let manifest = write_corpus_iter(samples, &dir, opts).unwrap();
        assert_eq!(manifest.total_samples, 14);

        // Stored records carry edges and equal the transform-at-load result.
        let stream = StreamingDataset::open(&dir).unwrap();
        for i in 0..14 {
            let stored = stream.sample(i);
            assert!(stored.graph.num_edges() > 0, "record {i} must carry edges");
            let fresh = pipeline.apply(ds.sample(i));
            assert_eq!(
                serde_json::to_string(&stored).unwrap(),
                serde_json::to_string(&fresh).unwrap(),
                "stored record {i} must equal write-time transform output"
            );
        }

        // The cross-check passes against the matching graph stage
        // (14 records at stride ceil(14/8)=2 → 7 visited)...
        let graph_stage = GraphTransform::radius(9.0, Some(12));
        assert_eq!(verify_precomputed_edges(&dir, &graph_stage, 8).unwrap(), 7);
        // ...checks every record when the cap allows...
        assert_eq!(verify_precomputed_edges(&dir, &graph_stage, 100).unwrap(), 14);
        // ...and rejects a corpus written with different parameters.
        let wrong = GraphTransform::radius(1.0, Some(2));
        match verify_precomputed_edges(&dir, &wrong, 8) {
            Err(ShardError::EdgeMismatch { index, .. }) => assert_eq!(index, 0),
            other => panic!("expected EdgeMismatch, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn clones_share_the_shard_cache() {
        let dir = tmp("clone");
        let ds = SyntheticMaterialsProject::new(6, 2);
        write_corpus(&ds, &dir, CorpusWriteOptions { shard_samples: 3, verify: false, workers: 1 }).unwrap();
        let obs = matsciml_obs::Obs::null();
        let a = StreamingDataset::open_with(&dir, 4, obs.clone()).unwrap();
        let b = a.clone();
        a.sample(0);
        b.sample(1); // same shard, opened once
        assert_eq!(obs.counter(DATA_SHARD_OPEN), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
