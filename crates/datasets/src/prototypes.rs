//! Crystallographic structure prototypes.
//!
//! Each prototype lists the fractional coordinates of one conventional unit
//! cell with symbolic sublattice slots (A/B/X); the synthetic generators
//! assign real species to the slots and scale by a lattice constant derived
//! from covalent radii. These are the textbook prototypes that dominate the
//! Materials Project and Carolina databases.

use matsciml_tensor::Vec3;

/// Sublattice slot within a prototype cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// Electropositive ("cation") site.
    A,
    /// Second cation / covalent partner site.
    B,
    /// Anion site.
    X,
}

/// A named prototype: fractional sites and the crystal-system tag used by
/// dataset filters (the Carolina database is cubic-only).
#[derive(Debug, Clone)]
pub struct Prototype {
    /// Conventional name (e.g. `"rocksalt"`).
    pub name: &'static str,
    /// `(slot, fractional coordinate)` for every site in the cell.
    pub sites: Vec<(Slot, Vec3)>,
    /// True when the conventional cell is cubic.
    pub cubic: bool,
    /// Aspect ratio `c/a` for non-cubic cells (1.0 when cubic).
    pub c_over_a: f32,
}

fn v(x: f32, y: f32, z: f32) -> Vec3 {
    Vec3::new(x, y, z)
}

/// Build the prototype catalogue.
fn catalogue() -> Vec<Prototype> {
    use Slot::*;
    vec![
        Prototype {
            name: "rocksalt",
            // NaCl: A on fcc, X on fcc offset by (1/2,0,0).
            sites: vec![
                (A, v(0.0, 0.0, 0.0)),
                (A, v(0.5, 0.5, 0.0)),
                (A, v(0.5, 0.0, 0.5)),
                (A, v(0.0, 0.5, 0.5)),
                (X, v(0.5, 0.0, 0.0)),
                (X, v(0.0, 0.5, 0.0)),
                (X, v(0.0, 0.0, 0.5)),
                (X, v(0.5, 0.5, 0.5)),
            ],
            cubic: true,
            c_over_a: 1.0,
        },
        Prototype {
            name: "cesium-chloride",
            sites: vec![(A, v(0.0, 0.0, 0.0)), (X, v(0.5, 0.5, 0.5))],
            cubic: true,
            c_over_a: 1.0,
        },
        Prototype {
            name: "zincblende",
            // ZnS: A on fcc, X on the tetrahedral quarter-diagonal sites.
            sites: vec![
                (A, v(0.0, 0.0, 0.0)),
                (A, v(0.5, 0.5, 0.0)),
                (A, v(0.5, 0.0, 0.5)),
                (A, v(0.0, 0.5, 0.5)),
                (X, v(0.25, 0.25, 0.25)),
                (X, v(0.75, 0.75, 0.25)),
                (X, v(0.75, 0.25, 0.75)),
                (X, v(0.25, 0.75, 0.75)),
            ],
            cubic: true,
            c_over_a: 1.0,
        },
        Prototype {
            name: "perovskite",
            // ABX3: A corner, B center, X face centers.
            sites: vec![
                (A, v(0.0, 0.0, 0.0)),
                (B, v(0.5, 0.5, 0.5)),
                (X, v(0.5, 0.5, 0.0)),
                (X, v(0.5, 0.0, 0.5)),
                (X, v(0.0, 0.5, 0.5)),
            ],
            cubic: true,
            c_over_a: 1.0,
        },
        Prototype {
            name: "fluorite",
            // CaF2: A on fcc, X filling all eight tetrahedral holes.
            sites: vec![
                (A, v(0.0, 0.0, 0.0)),
                (A, v(0.5, 0.5, 0.0)),
                (A, v(0.5, 0.0, 0.5)),
                (A, v(0.0, 0.5, 0.5)),
                (X, v(0.25, 0.25, 0.25)),
                (X, v(0.75, 0.25, 0.25)),
                (X, v(0.25, 0.75, 0.25)),
                (X, v(0.25, 0.25, 0.75)),
                (X, v(0.75, 0.75, 0.25)),
                (X, v(0.75, 0.25, 0.75)),
                (X, v(0.25, 0.75, 0.75)),
                (X, v(0.75, 0.75, 0.75)),
            ],
            cubic: true,
            c_over_a: 1.0,
        },
        Prototype {
            name: "rutile",
            // TiO2 (tetragonal, c/a ≈ 0.64).
            sites: vec![
                (A, v(0.0, 0.0, 0.0)),
                (A, v(0.5, 0.5, 0.5)),
                (X, v(0.3, 0.3, 0.0)),
                (X, v(0.7, 0.7, 0.0)),
                (X, v(0.8, 0.2, 0.5)),
                (X, v(0.2, 0.8, 0.5)),
            ],
            cubic: false,
            c_over_a: 0.64,
        },
        Prototype {
            name: "layered-cdi2",
            // CdI2-type layered AX2 (trigonal, modelled in an orthogonal cell).
            sites: vec![
                (A, v(0.0, 0.0, 0.0)),
                (X, v(1.0 / 3.0, 2.0 / 3.0, 0.25)),
                (X, v(2.0 / 3.0, 1.0 / 3.0, 0.75)),
            ],
            cubic: false,
            c_over_a: 1.61,
        },
        Prototype {
            name: "wurtzite",
            // Hexagonal AX, modelled in an orthogonal surrogate cell.
            sites: vec![
                (A, v(1.0 / 3.0, 2.0 / 3.0, 0.0)),
                (A, v(2.0 / 3.0, 1.0 / 3.0, 0.5)),
                (X, v(1.0 / 3.0, 2.0 / 3.0, 0.375)),
                (X, v(2.0 / 3.0, 1.0 / 3.0, 0.875)),
            ],
            cubic: false,
            c_over_a: 1.63,
        },
    ]
}

/// Every prototype (Materials Project surrogate draws from all of these).
pub fn all_prototypes() -> &'static [Prototype] {
    static ALL: std::sync::OnceLock<Vec<Prototype>> = std::sync::OnceLock::new();
    ALL.get_or_init(catalogue)
}

/// Cubic prototypes only (the Carolina Materials Database is a catalogue
/// of hypothetical *cubic* crystals).
pub fn cubic_prototypes() -> Vec<&'static Prototype> {
    all_prototypes().iter().filter(|p| p.cubic).collect()
}

/// Convenience handle mirroring `all_prototypes` for re-export.
pub static ALL_PROTOTYPES: fn() -> &'static [Prototype] = all_prototypes;
/// Convenience handle mirroring `cubic_prototypes` for re-export.
pub static CUBIC_PROTOTYPES: fn() -> Vec<&'static Prototype> = cubic_prototypes;

impl Prototype {
    /// Count sites of a slot.
    pub fn slot_count(&self, slot: Slot) -> usize {
        self.sites.iter().filter(|(s, _)| *s == slot).count()
    }

    /// Realize Cartesian coordinates for lattice constant `a` (and the
    /// prototype's `c/a`), returning `(slots, positions)`.
    pub fn realize(&self, a: f32) -> (Vec<Slot>, Vec<Vec3>) {
        let c = a * self.c_over_a;
        let mut slots = Vec::with_capacity(self.sites.len());
        let mut pos = Vec::with_capacity(self.sites.len());
        for (slot, f) in &self.sites {
            slots.push(*slot);
            pos.push(Vec3::new(f.x * a, f.y * a, f.z * c));
        }
        (slots, pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_contents() {
        let all = all_prototypes();
        assert_eq!(all.len(), 8);
        let cubic = cubic_prototypes();
        assert_eq!(cubic.len(), 5);
        assert!(cubic.iter().all(|p| p.cubic && p.c_over_a == 1.0));
    }

    #[test]
    fn stoichiometries_are_correct() {
        let get = |n: &str| all_prototypes().iter().find(|p| p.name == n).unwrap();
        let rs = get("rocksalt");
        assert_eq!(rs.slot_count(Slot::A), 4);
        assert_eq!(rs.slot_count(Slot::X), 4);
        let pv = get("perovskite");
        assert_eq!(pv.slot_count(Slot::A), 1);
        assert_eq!(pv.slot_count(Slot::B), 1);
        assert_eq!(pv.slot_count(Slot::X), 3);
        let fl = get("fluorite");
        assert_eq!(fl.slot_count(Slot::X), 2 * fl.slot_count(Slot::A));
    }

    #[test]
    fn fractional_coordinates_are_in_cell() {
        for p in all_prototypes() {
            for (_, f) in &p.sites {
                for c in [f.x, f.y, f.z] {
                    assert!((0.0..1.0).contains(&c), "{}: coordinate {c} outside cell", p.name);
                }
            }
        }
    }

    #[test]
    fn realize_scales_by_lattice_constant() {
        let pv = all_prototypes().iter().find(|p| p.name == "perovskite").unwrap();
        let (slots, pos) = pv.realize(4.0);
        assert_eq!(slots.len(), 5);
        // B site at the cube center.
        assert_eq!(pos[1], Vec3::new(2.0, 2.0, 2.0));
    }

    #[test]
    fn rutile_respects_c_over_a() {
        let rt = all_prototypes().iter().find(|p| p.name == "rutile").unwrap();
        let (_, pos) = rt.realize(4.0);
        // Second A site is at (1/2, 1/2, 1/2) of a cell with c = 0.64 a.
        assert!((pos[1].z - 0.5 * 4.0 * 0.64).abs() < 1e-5);
    }

    #[test]
    fn no_two_sites_coincide() {
        for p in all_prototypes() {
            let (_, pos) = p.realize(4.0);
            for i in 0..pos.len() {
                for j in i + 1..pos.len() {
                    assert!(
                        (pos[i] - pos[j]).norm() > 0.3,
                        "{}: sites {i} and {j} overlap",
                        p.name
                    );
                }
            }
        }
    }
}
