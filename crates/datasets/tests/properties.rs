//! Property-based tests over the dataset generators and loading pipeline.

use matsciml_datasets::{
    elements, ConcatDataset, DataLoader, Dataset, GraphTransform, Split, SymmetryDataset,
    SyntheticCarolina, SyntheticLips, SyntheticMaterialsProject, SyntheticOc20, SyntheticOc22,
    Transform,
};
use proptest::prelude::*;

/// Proptest needs `Debug` inputs, so generate a spec and materialize the
/// trait object inside the test body.
fn any_spec() -> impl Strategy<Value = (usize, usize, u64)> {
    (0usize..6, 1usize..200, any::<u64>())
}

fn build(kind: usize, size: usize, seed: u64) -> Box<dyn Dataset> {
    match kind {
        0 => Box::new(SyntheticMaterialsProject::new(size, seed)),
        1 => Box::new(SyntheticCarolina::new(size, seed)),
        2 => Box::new(SyntheticOc20::new(size, seed)),
        3 => Box::new(SyntheticOc22::new(size, seed)),
        4 => Box::new(SyntheticLips::new(size, seed)),
        _ => Box::new(SymmetryDataset::new(size, seed)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_sample_is_well_formed((kind, size, seed) in any_spec(), frac in 0.0f32..1.0) {
        let ds = build(kind, size, seed);
        let i = ((size - 1) as f32 * frac) as usize;
        let s = ds.sample(i);
        // Structure invariants.
        prop_assert!(s.graph.num_nodes() >= 1);
        prop_assert_eq!(s.graph.species.len(), s.graph.positions.len());
        prop_assert!(s.graph.species.iter().all(|&sp| (sp as usize) < elements::NUM_SPECIES));
        prop_assert!(s.graph.positions.iter().all(|p| p.norm().is_finite()));
        // Fresh samples are point clouds (transforms add edges).
        prop_assert_eq!(s.graph.num_edges(), 0);
        // At least one target labeled, all finite.
        let t = s.targets;
        let labeled = t.band_gap.is_some()
            || t.fermi_energy.is_some()
            || t.formation_energy.is_some()
            || t.stable.is_some()
            || t.energy.is_some()
            || t.sym_label.is_some();
        prop_assert!(labeled, "sample carries no targets");
        for v in [t.band_gap, t.fermi_energy, t.formation_energy, t.energy] {
            if let Some(v) = v {
                prop_assert!(v.is_finite());
            }
        }
    }

    #[test]
    fn sampling_is_deterministic((kind, size, seed) in any_spec(), frac in 0.0f32..1.0) {
        let ds = build(kind, size, seed);
        let i = ((size - 1) as f32 * frac) as usize;
        let a = ds.sample(i);
        let b = ds.sample(i);
        prop_assert_eq!(a.graph.positions, b.graph.positions);
        prop_assert_eq!(a.graph.species, b.graph.species);
        prop_assert_eq!(a.targets, b.targets);
    }

    #[test]
    fn atoms_never_overlap((kind, size, seed) in any_spec(), frac in 0.0f32..1.0) {
        let ds = build(kind, size, seed);
        let i = ((size - 1) as f32 * frac) as usize;
        let s = ds.sample(i);
        let p = &s.graph.positions;
        // Chemistry datasets place real atoms (hard-sphere bound); the
        // symmetry generator's abstract particles may sit arbitrarily
        // close when a seed lands near a symmetry element, but must stay
        // distinct.
        let min_sep = if matches!(ds.id(), matsciml_datasets::DatasetId::Symmetry) {
            1e-4
        } else {
            0.2
        };
        for a in 0..p.len() {
            for b in a + 1..p.len() {
                prop_assert!(
                    (p[a] - p[b]).norm() > min_sep,
                    "atoms {} and {} overlap in {:?}",
                    a, b, ds.id()
                );
            }
        }
    }

    #[test]
    fn split_is_a_partition(
        size in 10usize..300,
        val_fraction in 0.05f32..0.5,
        seed in any::<u64>(),
    ) {
        let ds = SyntheticMaterialsProject::new(size, seed);
        let train = DataLoader::new(&ds, None, Split::Train, val_fraction, 1, 0);
        let val = DataLoader::new(&ds, None, Split::Val, val_fraction, 1, 0);
        prop_assert_eq!(train.len() + val.len(), size);
        prop_assert!(val.len() >= 1, "val split must be non-empty at these sizes");
    }

    #[test]
    fn graph_transform_preserves_atoms(
        (kind, size, seed) in any_spec(),
        frac in 0.0f32..1.0,
        radius in 1.0f32..8.0,
    ) {
        let ds = build(kind, size, seed);
        let i = ((size - 1) as f32 * frac) as usize;
        let raw = ds.sample(i);
        let t = GraphTransform::radius(radius, Some(16));
        let wired = t.apply(raw.clone());
        prop_assert_eq!(&wired.graph.species, &raw.graph.species);
        prop_assert_eq!(&wired.graph.positions, &raw.graph.positions);
        prop_assert_eq!(wired.targets, raw.targets);
        // Edges respect the cutoff.
        let r2 = radius * radius;
        for d2 in wired.graph.edge_lengths_sq() {
            prop_assert!(d2 <= r2 * 1.0001);
        }
    }

    #[test]
    fn concat_preserves_per_source_samples(
        a_size in 1usize..50,
        b_size in 1usize..50,
        seed in any::<u64>(),
    ) {
        let concat = ConcatDataset::new(vec![
            Box::new(SyntheticMaterialsProject::new(a_size, seed)),
            Box::new(SyntheticLips::new(b_size, seed)),
        ]);
        prop_assert_eq!(concat.len(), a_size + b_size);
        let direct_a = SyntheticMaterialsProject::new(a_size, seed).sample(a_size - 1);
        prop_assert_eq!(concat.sample(a_size - 1).targets, direct_a.targets);
        let direct_b = SyntheticLips::new(b_size, seed).sample(0);
        prop_assert_eq!(concat.sample(a_size).targets, direct_b.targets);
    }
}
