//! # Open MatSci ML Toolkit (Rust reproduction)
//!
//! A ground-up Rust implementation of the system described in *"Towards
//! Foundation Models for Materials Science: The Open MatSci ML Toolkit"*
//! (Lee et al., SC 2023): a modular materials-science machine-learning
//! framework — datasets → transforms → tasks → shared encoder → output
//! heads — together with every substrate the paper's evaluation rests on.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`tensor`] | `matsciml-tensor` | dense f32 tensors, matmul, Vec3/Mat3 |
//! | [`autograd`] | `matsciml-autograd` | tape-based reverse-mode AD |
//! | [`nn`] | `matsciml-nn` | layers, MLP blocks, parameter store |
//! | [`opt`] | `matsciml-opt` | AdamW, LR schedules, instability probe |
//! | [`graph`] | `matsciml-graph` | atomic graphs, radius/k-NN, batching |
//! | [`symmetry`] | `matsciml-symmetry` | the 32 point groups + pretraining generator |
//! | [`datasets`] | `matsciml-datasets` | synthetic MP/CMD/OC20/OC22/LiPS, transforms, loading |
//! | [`models`] | `matsciml-models` | E(n)-GNN encoder, MPNN baseline |
//! | [`train`] | `matsciml-train` | tasks, multi-task models, DDP simulator, trainer, inference server |
//! | [`ckpt`] | `matsciml-ckpt` | the versioned `matsciml-ckpt/v1` checkpoint container |
//! | [`obs`] | `matsciml-obs` | spans, streaming histograms, JSONL run recorder |
//! | [`umap`] | `matsciml-umap` | UMAP for the dataset-exploration study |
//!
//! ## Quickstart
//!
//! ```
//! use matsciml::prelude::*;
//!
//! // A synthetic Materials Project with 64 structures.
//! let dataset = SyntheticMaterialsProject::new(64, 0);
//! let pipeline = Compose::standard(4.5, Some(12));
//! let train_dl = DataLoader::new(&dataset, Some(&pipeline), Split::Train, 0.25, 8, 0);
//! let val_dl = DataLoader::new(&dataset, Some(&pipeline), Split::Val, 0.25, 8, 0);
//!
//! // An E(n)-GNN with a band-gap regression head.
//! let mut model = TaskModel::egnn(
//!     EgnnConfig::small(16),
//!     &[TaskHeadConfig::regression(DatasetId::MaterialsProject, TargetKind::BandGap, 32, 3)],
//!     0,
//! );
//!
//! // Train for a few steps with the paper's recipe.
//! let trainer = Trainer::new(TrainConfig { steps: 3, ..Default::default() });
//! let log = trainer.train(&mut model, &train_dl, Some(&val_dl));
//! assert_eq!(log.records.len(), 3);
//! ```

#![warn(missing_docs)]

pub use matsciml_autograd as autograd;
pub use matsciml_ckpt as ckpt;
pub use matsciml_datasets as datasets;
pub use matsciml_graph as graph;
pub use matsciml_models as models;
pub use matsciml_nn as nn;
pub use matsciml_obs as obs;
pub use matsciml_opt as opt;
pub use matsciml_symmetry as symmetry;
pub use matsciml_tensor as tensor;
pub use matsciml_train as train;
pub use matsciml_umap as umap;

/// One-stop imports for applications and the experiment binaries.
pub mod prelude {
    pub use matsciml_autograd::{Graph, Var};
    pub use matsciml_datasets::{
        verify_precomputed_edges, write_corpus, write_corpus_iter, CenterTransform, Compose,
        ConcatDataset, CorpusWriteOptions, DataLoader, Dataset, DatasetId, GaussianNoiseTransform,
        GraphRecipe, GraphTransform, JsonlDataset, JsonlStream, Sample, ShardManifest, ShardReader,
        ShuffleMode, Split, StreamingDataset, SymmetryDataset, SyntheticCarolina, SyntheticLips,
        SyntheticMaterialsProject, SyntheticOc20, SyntheticOc22, Targets, Transform,
    };
    pub use matsciml_graph::{
        complete_graph, knn_graph, permute_graph, radius_graph, rcm_order,
        reorder_for_locality, BatchedGraph, CsrGraph, MaterialGraph,
    };
    pub use matsciml_models::{
        AttentionConfig, AttentionEncoder, EgnnConfig, EgnnEncoder, Encoder, ModelInput,
        MpnnConfig, MpnnEncoder,
    };
    pub use matsciml_nn::{
        Activation, BatchNorm, Embedding, ForwardCtx, Linear, Mlp, NormKind, OutputHead,
        ParamId, ParamSet, ResidualBlock, RmsNorm,
    };
    pub use matsciml_obs::{
        Event, Obs, Phase, PhaseAcc, RunRecord, RunRecorder, Span, StreamingHistogram,
    };
    pub use matsciml_opt::{
        AdamW, AdamWConfig, ConstantLr, InstabilityProbe, LrSchedule, Sgd, WarmupExpDecay,
    };
    pub use matsciml_symmetry::{all_point_groups, group_by_name, PointGroup, SymmetryConfig};
    pub use matsciml_tensor::{
        infer_precision, max_rel_error, set_infer_precision, HalfTensor, Mat3, Precision, Tensor,
        TensorError, Vec3,
    };
    pub use matsciml_ckpt::{CkptError, CkptReader, CkptWriter};
    pub use matsciml_train::{
        collate, ddp::ddp_step, ddp::ddp_step_observed, ddp::DdpConfig, load_infer_model,
        save_quantized_checkpoint, sweep::run_sweep, sweep::run_sweep_observed, sweep::SweepGrid,
        sweep::Trial, target_stats, ForceFieldModel, throughput, EncoderKind, InferModel,
        InferenceServer, LossKind, MetricMap, EarlyStop, ServeConfig, ServeError, TargetKind,
        TaskHead, TaskHeadConfig, TaskModel, TrainCheckpoint, TrainConfig, TrainLog,
        TrainProgress, TrainRecord, Trainer,
    };
    pub use matsciml_umap::{
        centroid_separation, exact_knn, silhouette, FittedUmap, Umap, UmapConfig,
    };
}
