//! Property-based tests for the UMAP implementation.

use matsciml_tensor::Tensor;
use matsciml_umap::{exact_knn, fuzzy_simplicial_set, smooth_knn, Umap, UmapConfig};
use proptest::prelude::*;

fn random_data(n: usize, d: usize, seed: u64) -> Tensor {
    use rand::{rngs::StdRng, SeedableRng};
    Tensor::randn(&[n, d], 0.0, 1.0, &mut StdRng::seed_from_u64(seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn knn_indices_valid_and_distances_sorted(
        n in 5usize..60,
        d in 1usize..8,
        k in 1usize..10,
        seed in any::<u64>(),
    ) {
        let data = random_data(n, d, seed);
        let (idx, dist) = exact_knn(&data, k);
        let keff = k.min(n - 1);
        for i in 0..n {
            prop_assert_eq!(idx[i].len(), keff);
            prop_assert!(!idx[i].contains(&(i as u32)));
            // Unique neighbors.
            let mut uniq = idx[i].clone();
            uniq.sort_unstable();
            uniq.dedup();
            prop_assert_eq!(uniq.len(), keff);
            for w in dist[i].windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
            prop_assert!(dist[i].iter().all(|v| v.is_finite() && *v >= 0.0));
        }
    }

    #[test]
    fn smooth_knn_sigmas_positive_and_rho_is_min(
        n in 3usize..30,
        seed in any::<u64>(),
    ) {
        let data = random_data(n, 3, seed);
        let (_, dists) = exact_knn(&data, (n - 1).min(8));
        let (rhos, sigmas) = smooth_knn(&dists);
        for i in 0..n {
            prop_assert!(sigmas[i] > 0.0);
            let min_pos = dists[i]
                .iter()
                .copied()
                .filter(|&d| d > 0.0)
                .fold(f32::INFINITY, f32::min);
            if min_pos.is_finite() {
                prop_assert!((rhos[i] - min_pos).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn fuzzy_graph_weights_in_unit_interval(
        n in 4usize..40,
        seed in any::<u64>(),
    ) {
        let data = random_data(n, 4, seed);
        let (idx, dists) = exact_knn(&data, 4.min(n - 1));
        let g = fuzzy_simplicial_set(&idx, &dists);
        prop_assert_eq!(g.n, n);
        prop_assert!(!g.weights.is_empty());
        for (e, &w) in g.weights.iter().enumerate() {
            prop_assert!(w > 0.0 && w <= 1.0 + 1e-5, "edge {e}: weight {w}");
            prop_assert!(g.rows[e] < n as u32 && g.cols[e] < n as u32);
            prop_assert!(g.rows[e] < g.cols[e], "canonical edge ordering");
        }
    }

    #[test]
    fn embedding_is_finite_for_arbitrary_inputs(
        n in 8usize..40,
        d in 2usize..6,
        seed in any::<u64>(),
    ) {
        let data = random_data(n, d, seed);
        let umap = Umap::new(UmapConfig {
            n_neighbors: 5,
            n_epochs: 15,
            seed: 1,
            ..UmapConfig::default()
        });
        let emb = umap.fit_transform(&data);
        prop_assert_eq!(emb.shape(), &[n, 2]);
        prop_assert!(emb.all_finite());
    }
}
