//! The layout optimizer: negative-sampling SGD on UMAP's cross-entropy
//! objective.

use matsciml_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::fuzzy::{fit_ab, fuzzy_simplicial_set};
use crate::knn::exact_knn;

/// UMAP hyperparameters. Defaults mirror umap-learn; the paper's Fig. 4
/// used `n_neighbors = 200`, `min_dist = 0.05`, Euclidean metric.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct UmapConfig {
    /// Neighborhood size k.
    pub n_neighbors: usize,
    /// Minimum separation in the embedding.
    pub min_dist: f32,
    /// Kernel spread.
    pub spread: f32,
    /// Output dimensionality (2 for the figure).
    pub out_dim: usize,
    /// SGD epochs.
    pub n_epochs: usize,
    /// Initial SGD learning rate (decays linearly to 0).
    pub learning_rate: f32,
    /// Negative samples per positive update.
    pub negative_sample_rate: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for UmapConfig {
    fn default() -> Self {
        UmapConfig {
            n_neighbors: 15,
            min_dist: 0.1,
            spread: 1.0,
            out_dim: 2,
            n_epochs: 200,
            learning_rate: 1.0,
            negative_sample_rate: 5,
            seed: 42,
        }
    }
}

impl UmapConfig {
    /// The paper's Fig. 4 parameters (n_neighbors 200, min_dist 0.05).
    pub fn paper_fig4() -> Self {
        UmapConfig {
            n_neighbors: 200,
            min_dist: 0.05,
            ..Default::default()
        }
    }
}

/// The fitted reducer.
pub struct Umap {
    /// Configuration used.
    pub config: UmapConfig,
    /// Fitted output-kernel parameters.
    pub a: f32,
    /// Fitted output-kernel parameters.
    pub b: f32,
}

impl Umap {
    /// Prepare a reducer (fits the `(a, b)` kernel).
    pub fn new(config: UmapConfig) -> Self {
        let (a, b) = fit_ab(config.min_dist, config.spread);
        Umap { config, a, b }
    }

    /// Embed `data` (`[n, d]`) into `[n, out_dim]`.
    pub fn fit_transform(&self, data: &Tensor) -> Tensor {
        let cfg = &self.config;
        let n = data.rows();
        assert!(n >= 4, "UMAP needs at least a handful of points");
        let (idx, dists) = exact_knn(data, cfg.n_neighbors);
        let graph = fuzzy_simplicial_set(&idx, &dists);

        let mut rng = StdRng::seed_from_u64(cfg.seed);
        // umap-learn random init: uniform in [-10, 10].
        let mut emb: Vec<f32> = (0..n * cfg.out_dim)
            .map(|_| rng.gen_range(-10.0f32..10.0))
            .collect();

        // Edge sampling schedule: an edge with weight w is updated every
        // (w_max / w) epochs.
        let w_max = graph.weights.iter().cloned().fold(f32::MIN, f32::max);
        let epochs_per_sample: Vec<f32> =
            graph.weights.iter().map(|&w| w_max / w.max(1e-6)).collect();
        let mut next_due: Vec<f32> = epochs_per_sample.clone();

        let (a, b) = (self.a, self.b);
        let d = cfg.out_dim;
        let clip = |v: f32| v.clamp(-4.0, 4.0);

        for epoch in 0..cfg.n_epochs {
            let alpha = cfg.learning_rate * (1.0 - epoch as f32 / cfg.n_epochs as f32);
            for e in 0..graph.rows.len() {
                if next_due[e] > (epoch + 1) as f32 {
                    continue;
                }
                next_due[e] += epochs_per_sample[e];
                let i = graph.rows[e] as usize;
                let j = graph.cols[e] as usize;

                // Attractive update on (i, j).
                let mut d2 = 0.0f32;
                for c in 0..d {
                    let diff = emb[i * d + c] - emb[j * d + c];
                    d2 += diff * diff;
                }
                if d2 > 0.0 {
                    let coeff = (-2.0 * a * b * d2.powf(b - 1.0)) / (1.0 + a * d2.powf(b));
                    for c in 0..d {
                        let g = clip(coeff * (emb[i * d + c] - emb[j * d + c]));
                        emb[i * d + c] += alpha * g;
                        emb[j * d + c] -= alpha * g;
                    }
                }

                // Repulsive updates against random negatives.
                for _ in 0..cfg.negative_sample_rate {
                    let k = rng.gen_range(0..n);
                    if k == i {
                        continue;
                    }
                    let mut d2 = 0.0f32;
                    for c in 0..d {
                        let diff = emb[i * d + c] - emb[k * d + c];
                        d2 += diff * diff;
                    }
                    let coeff = if d2 > 0.0 {
                        (2.0 * b) / ((0.001 + d2) * (1.0 + a * d2.powf(b)))
                    } else {
                        0.0
                    };
                    for c in 0..d {
                        let g = if coeff > 0.0 {
                            clip(coeff * (emb[i * d + c] - emb[k * d + c]))
                        } else {
                            4.0
                        };
                        emb[i * d + c] += alpha * g;
                    }
                }
            }
        }

        Tensor::from_vec(&[n, cfg.out_dim], emb).expect("embedding buffer size")
    }
}

/// A fitted UMAP model: the reference data, its embedding, and the kernel
/// parameters — supports out-of-sample [`FittedUmap::transform`], the
/// workflow behind "where does this new structure fall on the dataset
/// map?".
pub struct FittedUmap {
    /// Configuration used at fit time.
    pub config: UmapConfig,
    /// Fitted output-kernel parameters.
    pub a: f32,
    /// Fitted output-kernel parameters.
    pub b: f32,
    reference: Tensor,
    embedding: Tensor,
}

impl Umap {
    /// Fit and keep the model for later out-of-sample transforms.
    pub fn fit(&self, data: &Tensor) -> FittedUmap {
        let embedding = self.fit_transform(data);
        FittedUmap {
            config: self.config,
            a: self.a,
            b: self.b,
            reference: data.clone(),
            embedding,
        }
    }
}

impl FittedUmap {
    /// The reference embedding produced at fit time.
    pub fn embedding(&self) -> &Tensor {
        &self.embedding
    }

    /// Embed new points into the fitted map: each new point is initialized
    /// at the membership-weighted average of its nearest reference points'
    /// embeddings, then refined by attraction-only SGD against those
    /// neighbors (reference points stay fixed — the umap-learn `transform`
    /// contract).
    pub fn transform(&self, new_data: &Tensor) -> Tensor {
        let cfg = &self.config;
        assert_eq!(
            new_data.cols(),
            self.reference.cols(),
            "dimensionality mismatch with the fitted reference"
        );
        let n_new = new_data.rows();
        let n_ref = self.reference.rows();
        let k = cfg.n_neighbors.min(n_ref);
        let d_in = new_data.cols();
        let dim = cfg.out_dim;

        // k-NN of each new point among the reference points.
        let refbuf = self.reference.as_slice();
        let newbuf = new_data.as_slice();
        let mut emb = vec![0.0f32; n_new * dim];
        let mut all_neighbors: Vec<Vec<(u32, f32)>> = Vec::with_capacity(n_new);
        for i in 0..n_new {
            let q = &newbuf[i * d_in..(i + 1) * d_in];
            let mut dists: Vec<(f32, u32)> = (0..n_ref)
                .map(|j| {
                    let r = &refbuf[j * d_in..(j + 1) * d_in];
                    let d2: f32 = q.iter().zip(r).map(|(a, b)| (a - b) * (a - b)).sum();
                    (d2, j as u32)
                })
                .collect();
            dists.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0));
            dists.truncate(k);
            dists.sort_by(|a, b| a.0.total_cmp(&b.0));
            // Membership weights from the smooth-kNN kernel.
            let rho = dists[0].0.sqrt();
            let sigma = (dists[k - 1].0.sqrt() - rho).max(1e-3);
            let weights: Vec<(u32, f32)> = dists
                .iter()
                .map(|&(d2, j)| (j, (-((d2.sqrt() - rho).max(0.0)) / sigma).exp()))
                .collect();
            let total: f32 = weights.iter().map(|&(_, w)| w).sum();
            // Weighted-average initialization.
            for &(j, w) in &weights {
                for c in 0..dim {
                    emb[i * dim + c] += self.embedding.at2(j as usize, c) * w / total.max(1e-9);
                }
            }
            all_neighbors.push(weights);
        }

        // Attraction-only refinement toward reference neighbors.
        let (a, b) = (self.a, self.b);
        let epochs = (cfg.n_epochs / 3).max(10);
        for epoch in 0..epochs {
            let alpha = cfg.learning_rate * 0.5 * (1.0 - epoch as f32 / epochs as f32);
            for i in 0..n_new {
                for &(j, w) in &all_neighbors[i] {
                    let mut d2 = 0.0f32;
                    for c in 0..dim {
                        let diff = emb[i * dim + c] - self.embedding.at2(j as usize, c);
                        d2 += diff * diff;
                    }
                    if d2 > 0.0 {
                        let coeff =
                            w * (-2.0 * a * b * d2.powf(b - 1.0)) / (1.0 + a * d2.powf(b));
                        for c in 0..dim {
                            let g = (coeff
                                * (emb[i * dim + c] - self.embedding.at2(j as usize, c)))
                            .clamp(-4.0, 4.0);
                            emb[i * dim + c] += alpha * g;
                        }
                    }
                }
            }
        }
        Tensor::from_vec(&[n_new, dim], emb).expect("embedding buffer")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::centroid_separation;

    /// Two well-separated Gaussian blobs in 8-D.
    fn blobs(n_per: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = n_per * 2;
        let mut data = Tensor::randn(&[n, 8], 0.0, 0.5, &mut rng);
        let buf = data.as_mut_slice();
        for i in 0..n_per {
            buf[i * 8] += 10.0; // blob 0 offset along first axis
        }
        let labels: Vec<usize> = (0..n).map(|i| usize::from(i >= n_per)).collect();
        (data, labels)
    }

    #[test]
    fn separates_two_blobs() {
        let (data, labels) = blobs(60, 1);
        let umap = Umap::new(UmapConfig {
            n_neighbors: 10,
            n_epochs: 80,
            seed: 7,
            ..Default::default()
        });
        let emb = umap.fit_transform(&data);
        assert_eq!(emb.shape(), &[120, 2]);
        assert!(emb.all_finite());
        let sep = centroid_separation(&emb, &labels);
        assert!(
            sep > 2.0,
            "blobs should separate in the embedding (separation {sep})"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let (data, _) = blobs(30, 2);
        let cfg = UmapConfig {
            n_neighbors: 8,
            n_epochs: 30,
            seed: 3,
            ..Default::default()
        };
        let a = Umap::new(cfg).fit_transform(&data);
        let b = Umap::new(cfg).fit_transform(&data);
        assert_eq!(a, b);
    }

    #[test]
    fn transform_places_new_points_near_their_cluster() {
        let (data, labels) = blobs(50, 4);
        let umap = Umap::new(UmapConfig {
            n_neighbors: 10,
            n_epochs: 60,
            seed: 5,
            ..Default::default()
        });
        let fitted = umap.fit(&data);

        // New points drawn from blob 0's distribution (offset +10 on x).
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let mut fresh = Tensor::randn(&[10, 8], 0.0, 0.5, &mut rng);
        for i in 0..10 {
            fresh.as_mut_slice()[i * 8] += 10.0;
        }
        let placed = fitted.transform(&fresh);
        assert_eq!(placed.shape(), &[10, 2]);
        assert!(placed.all_finite());

        // Each placed point must be nearer blob 0's centroid than blob 1's.
        let emb = fitted.embedding();
        let centroid = |target: usize| {
            let mut c = [0.0f32; 2];
            let mut count = 0;
            for (i, &l) in labels.iter().enumerate() {
                if l == target {
                    c[0] += emb.at2(i, 0);
                    c[1] += emb.at2(i, 1);
                    count += 1;
                }
            }
            [c[0] / count as f32, c[1] / count as f32]
        };
        let c0 = centroid(0);
        let c1 = centroid(1);
        let mut correct = 0;
        for i in 0..10 {
            let p = [placed.at2(i, 0), placed.at2(i, 1)];
            let d0 = (p[0] - c0[0]).powi(2) + (p[1] - c0[1]).powi(2);
            let d1 = (p[0] - c1[0]).powi(2) + (p[1] - c1[1]).powi(2);
            correct += usize::from(d0 < d1);
        }
        assert!(correct >= 8, "{correct}/10 new points placed in the right cluster");
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn transform_rejects_wrong_dimensionality() {
        let (data, _) = blobs(20, 6);
        let fitted = Umap::new(UmapConfig {
            n_neighbors: 5,
            n_epochs: 10,
            ..Default::default()
        })
        .fit(&data);
        let _ = fitted.transform(&Tensor::zeros(&[3, 4]));
    }

    #[test]
    fn kernel_parameters_are_fitted_once() {
        let u = Umap::new(UmapConfig::default());
        assert!(u.a > 0.5 && u.a < 3.0);
        assert!(u.b > 0.5 && u.b < 1.5);
    }

    #[test]
    #[should_panic(expected = "handful of points")]
    fn tiny_inputs_are_rejected() {
        let u = Umap::new(UmapConfig::default());
        let _ = u.fit_transform(&Tensor::zeros(&[2, 3]));
    }
}
