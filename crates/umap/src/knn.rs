//! Exact k-nearest-neighbor search.

use matsciml_tensor::Tensor;
use rayon::prelude::*;

/// For every row of `data` (`[n, d]`), the indices and distances of its
/// `k` nearest other rows (Euclidean), sorted ascending by distance.
///
/// Brute force with rayon over query rows: exact, deterministic, and fast
/// enough for the tens of thousands of points the Fig. 4 study embeds.
pub fn exact_knn(data: &Tensor, k: usize) -> (Vec<Vec<u32>>, Vec<Vec<f32>>) {
    let n = data.rows();
    let d = data.cols();
    let k = k.min(n.saturating_sub(1));
    let buf = data.as_slice();

    let rows: Vec<(Vec<u32>, Vec<f32>)> = (0..n)
        .into_par_iter()
        .map(|i| {
            let qi = &buf[i * d..(i + 1) * d];
            let mut dists: Vec<(f32, u32)> = Vec::with_capacity(n - 1);
            for j in 0..n {
                if j == i {
                    continue;
                }
                let qj = &buf[j * d..(j + 1) * d];
                let mut acc = 0.0f32;
                for (a, b) in qi.iter().zip(qj) {
                    let diff = a - b;
                    acc += diff * diff;
                }
                dists.push((acc, j as u32));
            }
            if dists.len() > k {
                dists.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0));
                dists.truncate(k);
            }
            dists.sort_by(|a, b| a.0.total_cmp(&b.0));
            (
                dists.iter().map(|&(_, j)| j).collect(),
                dists.iter().map(|&(d2, _)| d2.sqrt()).collect(),
            )
        })
        .collect();

    rows.into_iter().unzip()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_1d(n: usize) -> Tensor {
        Tensor::from_fn(&[n, 1], |i| i as f32)
    }

    #[test]
    fn knn_on_a_line_finds_adjacent_points() {
        let (idx, dist) = exact_knn(&grid_1d(10), 2);
        // Interior point 5: neighbors 4 and 6 at distance 1.
        assert!(idx[5].contains(&4) && idx[5].contains(&6));
        assert_eq!(dist[5], vec![1.0, 1.0]);
        // Endpoint 0: neighbors 1 and 2.
        assert_eq!(idx[0], vec![1, 2]);
        assert_eq!(dist[0], vec![1.0, 2.0]);
    }

    #[test]
    fn distances_are_sorted_and_self_excluded() {
        let data = Tensor::from_fn(&[30, 3], |i| ((i * 31 % 17) as f32) * 0.37);
        let (idx, dist) = exact_knn(&data, 5);
        for i in 0..30 {
            assert_eq!(idx[i].len(), 5);
            assert!(!idx[i].contains(&(i as u32)), "row {i} is its own neighbor");
            for w in dist[i].windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn k_larger_than_n_is_clamped() {
        let (idx, _) = exact_knn(&grid_1d(3), 10);
        assert_eq!(idx[0].len(), 2);
    }

    #[test]
    fn knn_matches_naive_on_random_data() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(5);
        let data = Tensor::randn(&[40, 4], 0.0, 1.0, &mut rng);
        let (idx, _) = exact_knn(&data, 3);
        // Naive check for a few rows.
        for i in [0usize, 13, 39] {
            let mut all: Vec<(f32, u32)> = (0..40)
                .filter(|&j| j != i)
                .map(|j| {
                    let d: f32 = (0..4)
                        .map(|c| (data.at2(i, c) - data.at2(j, c)).powi(2))
                        .sum();
                    (d, j as u32)
                })
                .collect();
            all.sort_by(|a, b| a.0.total_cmp(&b.0));
            let expected: Vec<u32> = all[..3].iter().map(|&(_, j)| j).collect();
            assert_eq!(idx[i], expected, "row {i}");
        }
    }
}
