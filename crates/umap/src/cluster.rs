//! Cluster-quality metrics used to quantify the Fig. 4 qualitative claims
//! (dataset overlap, LiPS forming its own tight cluster).

use matsciml_tensor::Tensor;

/// Summary statistics of labeled clusters in an embedding.
#[derive(Debug, Clone)]
pub struct ClusterStats {
    /// Per-cluster centroid, `[k][dim]`.
    pub centroids: Vec<Vec<f32>>,
    /// Per-cluster mean distance of members to their centroid.
    pub spreads: Vec<f32>,
    /// Number of clusters.
    pub k: usize,
}

/// Compute centroids and spreads for integer-labeled points.
pub fn cluster_stats(emb: &Tensor, labels: &[usize]) -> ClusterStats {
    let (n, d) = (emb.rows(), emb.cols());
    assert_eq!(labels.len(), n, "one label per embedded point");
    let k = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut centroids = vec![vec![0.0f32; d]; k];
    let mut counts = vec![0usize; k];
    for (i, &l) in labels.iter().enumerate() {
        counts[l] += 1;
        for (c, centroid_c) in centroids[l].iter_mut().enumerate() {
            *centroid_c += emb.at2(i, c);
        }
    }
    for (cent, &cnt) in centroids.iter_mut().zip(&counts) {
        if cnt > 0 {
            cent.iter_mut().for_each(|v| *v /= cnt as f32);
        }
    }
    let mut spreads = vec![0.0f32; k];
    for (i, &l) in labels.iter().enumerate() {
        let mut d2 = 0.0f32;
        for (c, centroid_c) in centroids[l].iter().enumerate() {
            let diff = emb.at2(i, c) - centroid_c;
            d2 += diff * diff;
        }
        spreads[l] += d2.sqrt();
    }
    for (s, &cnt) in spreads.iter_mut().zip(&counts) {
        if cnt > 0 {
            *s /= cnt as f32;
        }
    }
    ClusterStats {
        centroids,
        spreads,
        k,
    }
}

/// Minimum inter-centroid distance divided by maximum intra-cluster
/// spread — > 1 means clusters are visibly separated.
pub fn centroid_separation(emb: &Tensor, labels: &[usize]) -> f32 {
    let stats = cluster_stats(emb, labels);
    if stats.k < 2 {
        return 0.0;
    }
    let mut min_inter = f32::INFINITY;
    for i in 0..stats.k {
        for j in i + 1..stats.k {
            let d2: f32 = stats.centroids[i]
                .iter()
                .zip(&stats.centroids[j])
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            min_inter = min_inter.min(d2.sqrt());
        }
    }
    let max_spread = stats.spreads.iter().cloned().fold(1e-6f32, f32::max);
    min_inter / max_spread
}

/// Mean silhouette coefficient over all points (O(n²); intended for the
/// few-thousand-point embeddings of the figure study). Ranges in [-1, 1];
/// higher means tighter, better-separated clusters.
pub fn silhouette(emb: &Tensor, labels: &[usize]) -> f32 {
    let n = emb.rows();
    let d = emb.cols();
    assert_eq!(labels.len(), n);
    let k = labels.iter().copied().max().map_or(0, |m| m + 1);
    if k < 2 {
        return 0.0;
    }
    let buf = emb.as_slice();
    let dist = |i: usize, j: usize| -> f32 {
        let mut acc = 0.0f32;
        for c in 0..d {
            let diff = buf[i * d + c] - buf[j * d + c];
            acc += diff * diff;
        }
        acc.sqrt()
    };
    let mut total = 0.0f64;
    let mut counted = 0usize;
    for i in 0..n {
        let mut sums = vec![0.0f32; k];
        let mut counts = vec![0usize; k];
        for j in 0..n {
            if i != j {
                sums[labels[j]] += dist(i, j);
                counts[labels[j]] += 1;
            }
        }
        let own = labels[i];
        if counts[own] == 0 {
            continue;
        }
        let a = sums[own] / counts[own] as f32;
        let b = (0..k)
            .filter(|&l| l != own && counts[l] > 0)
            .map(|l| sums[l] / counts[l] as f32)
            .fold(f32::INFINITY, f32::min);
        if b.is_finite() {
            total += ((b - a) / a.max(b).max(1e-9)) as f64;
            counted += 1;
        }
    }
    if counted == 0 {
        0.0
    } else {
        (total / counted as f64) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tight_clusters() -> (Tensor, Vec<usize>) {
        // Cluster 0 near origin, cluster 1 near (10, 0).
        let pts = vec![
            0.0, 0.0, 0.1, 0.0, 0.0, 0.1, //
            10.0, 0.0, 10.1, 0.0, 10.0, 0.1,
        ];
        (
            Tensor::from_vec(&[6, 2], pts).unwrap(),
            vec![0, 0, 0, 1, 1, 1],
        )
    }

    #[test]
    fn stats_compute_centroids_and_spreads() {
        let (emb, labels) = two_tight_clusters();
        let stats = cluster_stats(&emb, &labels);
        assert_eq!(stats.k, 2);
        assert!((stats.centroids[1][0] - 10.033).abs() < 0.01);
        assert!(stats.spreads.iter().all(|&s| s < 0.2));
    }

    #[test]
    fn separation_is_high_for_distant_clusters() {
        let (emb, labels) = two_tight_clusters();
        assert!(centroid_separation(&emb, &labels) > 50.0);
    }

    #[test]
    fn silhouette_near_one_for_clean_clusters_and_low_for_mixed() {
        let (emb, labels) = two_tight_clusters();
        assert!(silhouette(&emb, &labels) > 0.9);
        // Shuffled labels destroy the structure.
        let mixed = vec![0, 1, 0, 1, 0, 1];
        assert!(silhouette(&emb, &mixed) < 0.2);
    }

    #[test]
    fn degenerate_single_cluster_returns_zero() {
        let (emb, _) = two_tight_clusters();
        let labels = vec![0; 6];
        assert_eq!(silhouette(&emb, &labels), 0.0);
        assert_eq!(centroid_separation(&emb, &labels), 0.0);
    }
}
