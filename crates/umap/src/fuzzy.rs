//! Fuzzy simplicial set construction and the output-kernel fit.

/// Sparse symmetric weighted graph in COO form.
#[derive(Debug, Clone)]
pub struct FuzzyGraph {
    /// Edge heads.
    pub rows: Vec<u32>,
    /// Edge tails.
    pub cols: Vec<u32>,
    /// Membership strengths in (0, 1].
    pub weights: Vec<f32>,
    /// Number of vertices.
    pub n: usize,
}

/// Per-point bandwidth calibration (Algorithm 3 of the UMAP paper):
/// returns `(rho, sigma)` where `rho_i` is the distance to the nearest
/// neighbor and `sigma_i` solves
/// `Σ_j exp(−max(0, d_ij − rho_i)/sigma_i) = log2(k)`.
pub fn smooth_knn(dists: &[Vec<f32>]) -> (Vec<f32>, Vec<f32>) {
    const TARGET_ITERS: usize = 64;
    let mut rhos = Vec::with_capacity(dists.len());
    let mut sigmas = Vec::with_capacity(dists.len());
    for d in dists {
        if d.is_empty() {
            rhos.push(0.0);
            sigmas.push(1.0);
            continue;
        }
        let rho = d
            .iter()
            .copied()
            .filter(|&x| x > 0.0)
            .fold(f32::INFINITY, f32::min);
        let rho = if rho.is_finite() { rho } else { 0.0 };
        let target = (d.len() as f32).log2();
        let (mut lo, mut hi) = (0.0f32, f32::INFINITY);
        let mut mid = 1.0f32;
        for _ in 0..TARGET_ITERS {
            let sum: f32 = d
                .iter()
                .map(|&x| (-((x - rho).max(0.0)) / mid).exp())
                .sum();
            if (sum - target).abs() < 1e-5 {
                break;
            }
            if sum > target {
                hi = mid;
                mid = (lo + hi) / 2.0;
            } else {
                lo = mid;
                mid = if hi.is_infinite() { mid * 2.0 } else { (lo + hi) / 2.0 };
            }
        }
        rhos.push(rho);
        sigmas.push(mid.max(1e-3));
    }
    (rhos, sigmas)
}

/// Build the symmetrized fuzzy simplicial set from a k-NN graph:
/// directional memberships `exp(−max(0, d−ρ)/σ)` combined by probabilistic
/// union `a + b − ab`.
pub fn fuzzy_simplicial_set(idx: &[Vec<u32>], dists: &[Vec<f32>]) -> FuzzyGraph {
    let n = idx.len();
    let (rhos, sigmas) = smooth_knn(dists);
    // Directional weights in a hash map keyed by (min, max) so the union
    // is applied once per undirected pair.
    use std::collections::HashMap;
    let mut pair: HashMap<(u32, u32), (f32, f32)> = HashMap::new();
    for i in 0..n {
        for (jj, &j) in idx[i].iter().enumerate() {
            let w = (-((dists[i][jj] - rhos[i]).max(0.0)) / sigmas[i]).exp();
            let key = if (i as u32) < j { (i as u32, j) } else { (j, i as u32) };
            let entry = pair.entry(key).or_insert((0.0, 0.0));
            if (i as u32) < j {
                entry.0 = entry.0.max(w);
            } else {
                entry.1 = entry.1.max(w);
            }
        }
    }
    let mut rows = Vec::with_capacity(pair.len());
    let mut cols = Vec::with_capacity(pair.len());
    let mut weights = Vec::with_capacity(pair.len());
    let mut entries: Vec<_> = pair.into_iter().collect();
    entries.sort_unstable_by_key(|&((a, b), _)| (a, b)); // determinism
    for ((a, b), (wab, wba)) in entries {
        let w = wab + wba - wab * wba;
        if w > 1e-6 {
            rows.push(a);
            cols.push(b);
            weights.push(w);
        }
    }
    FuzzyGraph {
        rows,
        cols,
        weights,
        n,
    }
}

/// Fit the output kernel `1/(1 + a·d^{2b})` to the target
/// `ψ(d) = 1 for d ≤ min_dist, exp(−(d − min_dist)/spread) otherwise`
/// by dense grid search + local refinement (umap-learn uses
/// `scipy.optimize.curve_fit`; at two parameters a refined grid matches it
/// to three decimals).
pub fn fit_ab(min_dist: f32, spread: f32) -> (f32, f32) {
    let xs: Vec<f32> = (1..=300).map(|i| i as f32 * 3.0 * spread / 300.0).collect();
    let target: Vec<f32> = xs
        .iter()
        .map(|&x| {
            if x <= min_dist {
                1.0
            } else {
                (-(x - min_dist) / spread).exp()
            }
        })
        .collect();
    let loss = |a: f32, b: f32| -> f32 {
        xs.iter()
            .zip(&target)
            .map(|(&x, &t)| {
                let y = 1.0 / (1.0 + a * x.powf(2.0 * b));
                (y - t) * (y - t)
            })
            .sum()
    };
    let (mut best_a, mut best_b, mut best_l) = (1.0f32, 1.0f32, f32::INFINITY);
    // Coarse grid, then two refinement passes around the best cell.
    let mut a_range = (0.05f32, 10.0f32);
    let mut b_range = (0.3f32, 2.5f32);
    for _pass in 0..3 {
        let steps = 40;
        for ia in 0..=steps {
            let a = a_range.0 + (a_range.1 - a_range.0) * ia as f32 / steps as f32;
            for ib in 0..=steps {
                let b = b_range.0 + (b_range.1 - b_range.0) * ib as f32 / steps as f32;
                let l = loss(a, b);
                if l < best_l {
                    best_l = l;
                    best_a = a;
                    best_b = b;
                }
            }
        }
        let aw = (a_range.1 - a_range.0) / steps as f32 * 2.0;
        let bw = (b_range.1 - b_range.0) / steps as f32 * 2.0;
        a_range = ((best_a - aw).max(1e-3), best_a + aw);
        b_range = ((best_b - bw).max(0.1), best_b + bw);
    }
    (best_a, best_b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smooth_knn_hits_entropy_target() {
        let dists = vec![vec![0.5f32, 1.0, 1.5, 2.0, 4.0, 4.5, 5.0, 6.0]];
        let (rhos, sigmas) = smooth_knn(&dists);
        assert_eq!(rhos[0], 0.5);
        let sum: f32 = dists[0]
            .iter()
            .map(|&x| (-((x - rhos[0]).max(0.0)) / sigmas[0]).exp())
            .sum();
        assert!((sum - 3.0).abs() < 1e-3, "sum = {sum}, want log2(8) = 3");
    }

    #[test]
    fn fuzzy_set_is_union_symmetric_and_bounded() {
        let idx = vec![vec![1u32, 2], vec![0, 2], vec![0, 1]];
        let dists = vec![vec![1.0f32, 2.0], vec![1.0, 1.5], vec![2.0, 1.5]];
        let g = fuzzy_simplicial_set(&idx, &dists);
        assert_eq!(g.n, 3);
        assert!(!g.weights.is_empty());
        for &w in &g.weights {
            assert!(w > 0.0 && w <= 1.0 + 1e-6, "weight {w} out of range");
        }
        // Nearest neighbors get membership 1 (d == rho).
        let max_w = g.weights.iter().cloned().fold(0.0f32, f32::max);
        assert!((max_w - 1.0).abs() < 1e-4);
    }

    #[test]
    fn fit_ab_matches_umap_learn_reference_values() {
        // umap-learn's curve_fit for (min_dist=0.1, spread=1.0) gives
        // a ≈ 1.577, b ≈ 0.895.
        let (a, b) = fit_ab(0.1, 1.0);
        assert!((a - 1.577).abs() < 0.15, "a = {a}");
        assert!((b - 0.895).abs() < 0.08, "b = {b}");
    }

    #[test]
    fn fit_ab_for_paper_min_dist() {
        // The paper uses min_dist = 0.05; the kernel must be sharper
        // (larger a) than at 0.1.
        let (a05, _) = fit_ab(0.05, 1.0);
        let (a10, _) = fit_ab(0.1, 1.0);
        assert!(a05 > a10, "smaller min_dist → sharper kernel ({a05} vs {a10})");
    }
}
