//! UMAP — Uniform Manifold Approximation and Projection (McInnes, Healy &
//! Saul 2018) — implemented from the paper for the Fig. 4 dataset-
//! exploration study.
//!
//! The pipeline is the reference algorithm: exact k-nearest neighbors →
//! per-point bandwidth calibration (smooth-kNN distances) → fuzzy
//! simplicial set with probabilistic-union symmetrization → negative-
//! sampling SGD on the cross-entropy layout objective, with the `(a, b)`
//! output-kernel parameters fitted from `min_dist`/`spread` exactly as
//! umap-learn does.

//! # Example
//!
//! ```
//! use matsciml_tensor::Tensor;
//! use matsciml_umap::{Umap, UmapConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let data = Tensor::randn(&[40, 8], 0.0, 1.0, &mut StdRng::seed_from_u64(0));
//! let umap = Umap::new(UmapConfig { n_neighbors: 6, n_epochs: 10, ..Default::default() });
//! let embedding = umap.fit_transform(&data);
//! assert_eq!(embedding.shape(), &[40, 2]);
//! ```

#![warn(missing_docs)]

mod cluster;
mod fuzzy;
mod knn;
mod layout;

pub use cluster::{centroid_separation, silhouette, ClusterStats};
pub use fuzzy::{fit_ab, fuzzy_simplicial_set, smooth_knn, FuzzyGraph};
pub use knn::exact_knn;
pub use layout::{FittedUmap, Umap, UmapConfig};
