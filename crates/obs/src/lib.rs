//! `matsciml-obs`: the observability substrate for the Open MatSci ML
//! Toolkit reproduction.
//!
//! The paper's evaluation is entirely *measured* training behaviour —
//! throughput vs. world size (Fig. 2), AdamW loss spikes (Figs. 3/6),
//! wall-clock scaling — so training runs here produce durable,
//! machine-readable records instead of ad-hoc logs. This crate provides
//! the three layers that make that cheap:
//!
//! - [`Span`]/[`PhaseAcc`]: monotonic, nestable, thread-aware timers.
//!   DDP rank threads time their own forward/backward work into relaxed
//!   atomic accumulators, so per-phase totals aggregate correctly with no
//!   coordination.
//! - [`StreamingHistogram`]: p50/p95/p99 in `O(log range)` memory without
//!   storing samples, plus named monotonic counters (e.g. allreduce wire
//!   volume from the bucketed gradient reduction).
//! - [`RunRecorder`]/[`Obs`]: one self-describing JSONL event stream per
//!   run — config snapshot, per-step phase timings, eval metrics, final
//!   summary — with the schema documented in `docs/RUN_RECORD.md` and
//!   enforced by [`RunRecord::validate`].
//!
//! Instrumented code takes an [`Obs`] handle. [`Obs::disabled`] makes
//! every call a single branch (no clock reads, no locks, no allocation),
//! so the instrumentation is near-zero-cost when off — asserted by the
//! overhead test in `matsciml-train`.

#![warn(missing_docs)]

mod hist;
mod record;
mod span;

pub use hist::{Quantiles, StreamingHistogram, DEFAULT_GROWTH};
pub use record::{
    Event, EvalEvent, FileSink, Json, MemorySink, NullSink, Obs, RunRecord, RunRecorder,
    RunStartEvent, Sink, StepEvent, SummaryEvent, TrialEvent, SCHEMA,
};
pub use span::{Phase, PhaseAcc, Span};
