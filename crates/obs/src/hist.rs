//! Streaming histograms: p50/p95/p99 without storing samples.
//!
//! [`StreamingHistogram`] keeps geometrically-spaced buckets (HDR-style):
//! bucket `i ≥ 1` covers `[g^(i-1), g^i)` for a growth factor `g`, and
//! every value below 1.0 shares bucket 0. Quantiles are read by walking
//! the cumulative counts and reporting the geometric midpoint of the
//! bucket containing the target rank, so the relative error of any
//! quantile is bounded by `√g − 1` (≈2.5% at the default `g = 1.05`)
//! regardless of how many samples streamed through. Memory is
//! `O(log(max/min))` buckets — a few hundred `u64`s for nanosecond-scale
//! timings — and `observe` is O(1).

use serde::{Deserialize, Serialize};

/// Default bucket growth factor: ~2.5% worst-case relative quantile error.
pub const DEFAULT_GROWTH: f64 = 1.05;

/// A fixed-memory streaming histogram over non-negative values.
///
/// Non-finite and negative observations are ignored (they would poison
/// the bucket index); exact `count`/`sum`/`min`/`max` are tracked on the
/// side so the edges of the distribution are reported exactly.
#[derive(Debug, Clone)]
pub struct StreamingHistogram {
    growth: f64,
    inv_ln_growth: f64,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for StreamingHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingHistogram {
    /// A histogram with the default growth factor ([`DEFAULT_GROWTH`]).
    pub fn new() -> Self {
        Self::with_growth(DEFAULT_GROWTH)
    }

    /// A histogram with bucket boundaries growing by `growth` (> 1.0) per
    /// bucket; smaller growth → tighter quantiles, more buckets.
    pub fn with_growth(growth: f64) -> Self {
        assert!(growth > 1.0, "growth factor must exceed 1.0");
        StreamingHistogram {
            growth,
            inv_ln_growth: 1.0 / growth.ln(),
            counts: Vec::new(),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bucket_of(&self, v: f64) -> usize {
        if v < 1.0 {
            0
        } else {
            // v in [g^(i-1), g^i) → bucket i.
            (v.ln() * self.inv_ln_growth).floor() as usize + 1
        }
    }

    /// Record one observation. Ignores NaN, ±∞, and negative values.
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() || v < 0.0 {
            return;
        }
        let b = self.bucket_of(v);
        if b >= self.counts.len() {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded observations (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Exact minimum observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// The `q`-quantile (`q` in `[0, 1]`), accurate to the bucket width:
    /// the geometric midpoint of the bucket holding rank `⌈q·count⌉`,
    /// clamped to the exact observed `[min, max]`. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let mid = if b == 0 {
                    0.5
                } else {
                    // Geometric midpoint of [g^(b-1), g^b).
                    self.growth.powf(b as f64 - 0.5)
                };
                return Some(mid.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// The standard summary reported in run records.
    pub fn quantiles(&self) -> Quantiles {
        Quantiles {
            p50: self.quantile(0.50).unwrap_or(0.0),
            p95: self.quantile(0.95).unwrap_or(0.0),
            p99: self.quantile(0.99).unwrap_or(0.0),
            mean: self.mean().unwrap_or(0.0),
            max: self.max().unwrap_or(0.0),
            count: self.count,
        }
    }
}

/// A serializable quantile summary of one histogram (the `phases` entries
/// of a run record's `summary` event).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quantiles {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Arithmetic mean (exact).
    pub mean: f64,
    /// Maximum (exact).
    pub max: f64,
    /// Number of observations.
    pub count: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact quantile of a sorted sample set, matching the histogram's
    /// rank convention (rank ⌈q·n⌉, 1-based).
    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    fn assert_close(h: &StreamingHistogram, sorted: &[f64], q: f64, rel_tol: f64) {
        let exact = exact_quantile(sorted, q);
        let approx = h.quantile(q).unwrap();
        let rel = (approx - exact).abs() / exact.abs().max(1e-12);
        assert!(
            rel <= rel_tol,
            "q={q}: approx {approx} vs exact {exact} (rel err {rel:.4} > {rel_tol})"
        );
    }

    #[test]
    fn uniform_quantiles_are_within_bucket_error() {
        let mut h = StreamingHistogram::new();
        let values: Vec<f64> = (1..=100_000).map(|i| i as f64).collect();
        for &v in &values {
            h.observe(v);
        }
        // √1.05 − 1 ≈ 2.47%; allow 3% for boundary effects.
        for q in [0.01, 0.10, 0.50, 0.90, 0.95, 0.99, 0.999] {
            assert_close(&h, &values, q, 0.03);
        }
        assert_eq!(h.count(), 100_000);
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(100_000.0));
    }

    #[test]
    fn heavy_tailed_quantiles_are_within_bucket_error() {
        // A deterministic lognormal-ish distribution spanning ~7 decades:
        // exactly the shape of latency data the histogram exists for.
        let mut values: Vec<f64> = (0..50_000)
            .map(|i| {
                let t = i as f64 / 50_000.0;
                (16.0 * t * t).exp() // 1 → e^16 ≈ 8.9e6
            })
            .collect();
        let mut h = StreamingHistogram::new();
        for &v in &values {
            h.observe(v);
        }
        values.sort_by(f64::total_cmp);
        for q in [0.50, 0.95, 0.99] {
            assert_close(&h, &values, q, 0.03);
        }
    }

    #[test]
    fn constant_distribution_is_exact() {
        let mut h = StreamingHistogram::new();
        for _ in 0..1000 {
            h.observe(42.0);
        }
        // The geometric midpoint is clamped to the observed [min, max], so a
        // constant stream reports exactly.
        assert_eq!(h.quantile(0.5), Some(42.0));
        assert_eq!(h.quantile(0.99), Some(42.0));
        assert_eq!(h.mean(), Some(42.0));
    }

    #[test]
    fn empty_and_garbage_observations() {
        let mut h = StreamingHistogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(-1.0);
        assert_eq!(h.count(), 0, "non-finite/negative values are ignored");
        h.observe(0.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.5), Some(0.0), "sub-unit bucket clamps to min");
    }

    #[test]
    fn memory_stays_logarithmic() {
        let mut h = StreamingHistogram::new();
        for i in 0..1_000_000u64 {
            // Nanosecond-scale dynamic range: 1 to 1e12.
            h.observe(((i % 12) as f64 * 2.3).exp());
        }
        assert!(h.counts.len() < 1024, "bucket count {} must stay bounded", h.counts.len());
    }

    #[test]
    fn quantiles_summary_is_serializable() {
        let mut h = StreamingHistogram::new();
        for i in 1..=100 {
            h.observe(i as f64);
        }
        let q = h.quantiles();
        assert_eq!(q.count, 100);
        let s = serde_json::to_string(&q).unwrap();
        let back: Quantiles = serde_json::from_str(&s).unwrap();
        assert_eq!(back, q);
    }
}
