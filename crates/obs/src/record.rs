//! The durable run record: line sinks, the JSONL event schema, the
//! [`RunRecorder`], and the [`Obs`] handle instrumented code is written
//! against.
//!
//! One training run emits one self-describing JSONL stream (schema
//! documented in `docs/RUN_RECORD.md`): a `run_start` event carrying a
//! full config snapshot, one `step` event per optimizer step with the
//! five-phase timing split and comm-volume counters, an `eval` event per
//! validation pass, optional `trial` events from sweeps, and a final
//! `summary` event with per-phase quantiles. Every line is one event:
//! a single-key JSON object whose key is the event type.
//!
//! [`Obs`] is the handle threaded through the trainer, the DDP step, and
//! the data loader. [`Obs::disabled`] is a `None` inside — every
//! instrumentation call short-circuits on one branch, no clock is read,
//! nothing allocates — so instrumented code paths cost nothing measurable
//! when observability is off (asserted by `crates/train/tests/obs_overhead.rs`).

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::de::Content;
use serde::ser::{to_content, SerializeMap as _, SerializeSeq as _};
use serde::{Deserialize, Serialize};

use crate::hist::{Quantiles, StreamingHistogram};
use crate::span::{Phase, PhaseAcc, Span};

/// The run-record schema identifier written into every `run_start` event.
pub const SCHEMA: &str = "matsciml-run-record/v1";

// ---------------------------------------------------------------------------
// Json: an arbitrary JSON value that round-trips through the serde stub
// ---------------------------------------------------------------------------

/// An arbitrary JSON value (a thin wrapper over the serde stub's
/// [`Content`] tree). Used to embed schema-free snapshots — e.g. the full
/// `TrainConfig` — inside typed events without the recorder depending on
/// the trainer's types.
#[derive(Debug, Clone, PartialEq)]
pub struct Json(pub Content);

impl Json {
    /// Snapshot any serializable value into a JSON tree.
    pub fn snapshot<T: Serialize + ?Sized>(value: &T) -> Result<Json, serde_json::Error> {
        Ok(Json(to_content::<T, serde_json::Error>(value)?))
    }

    /// JSON `null`.
    pub fn null() -> Json {
        Json(Content::Null)
    }

    /// Look up a key when the value is an object.
    pub fn get(&self, key: &str) -> Option<&Content> {
        match &self.0 {
            Content::Map(pairs) => pairs
                .iter()
                .find(|(k, _)| matches!(k, Content::Str(s) if s == key))
                .map(|(_, v)| v),
            _ => None,
        }
    }
}

struct JsonRef<'a>(&'a Content);

impl Serialize for JsonRef<'_> {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self.0 {
            Content::Null => s.serialize_none(),
            Content::Bool(v) => s.serialize_bool(*v),
            Content::I64(v) => s.serialize_i64(*v),
            Content::U64(v) => s.serialize_u64(*v),
            Content::F32(v) => s.serialize_f32(*v),
            Content::F64(v) => s.serialize_f64(*v),
            Content::Str(v) => s.serialize_str(v),
            Content::Seq(items) => {
                let mut seq = s.serialize_seq(Some(items.len()))?;
                for item in items {
                    seq.serialize_element(&JsonRef(item))?;
                }
                seq.end()
            }
            Content::Map(pairs) => {
                let mut map = s.serialize_map(Some(pairs.len()))?;
                for (k, v) in pairs {
                    map.serialize_entry(&JsonRef(k), &JsonRef(v))?;
                }
                map.end()
            }
        }
    }
}

impl Serialize for Json {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        JsonRef(&self.0).serialize(s)
    }
}

impl<'de> Deserialize<'de> for Json {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(Json(d.deserialize_content()?))
    }
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// A line-oriented output for recorder artifacts (JSONL event streams,
/// CSV tables). Implementations receive complete lines without trailing
/// newlines.
pub trait Sink: Send {
    /// Append one line.
    fn write_line(&mut self, line: &str);
    /// Flush buffered output (no-op by default).
    fn flush(&mut self) {}
}

/// The no-op sink: discards every line. An [`Obs`] over a `NullSink`
/// still aggregates spans, counters, and histograms (useful for
/// `--trace`-style summaries) but writes no artifact.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn write_line(&mut self, _line: &str) {}
}

/// A buffered line-per-write file sink, creating parent directories on
/// open. Used for both JSONL run records and CSV training logs.
#[derive(Debug)]
pub struct FileSink {
    out: BufWriter<File>,
}

impl FileSink {
    /// Create (truncate) `path`, creating parent directories first.
    pub fn create(path: impl AsRef<Path>) -> io::Result<FileSink> {
        if let Some(dir) = path.as_ref().parent() {
            std::fs::create_dir_all(dir)?;
        }
        Ok(FileSink {
            out: BufWriter::new(File::create(path)?),
        })
    }
}

impl Sink for FileSink {
    fn write_line(&mut self, line: &str) {
        // Artifact writing must not panic mid-training; errors surface on
        // the explicit flush at run end.
        let _ = self.out.write_all(line.as_bytes());
        let _ = self.out.write_all(b"\n");
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

impl Drop for FileSink {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

/// An in-memory sink for tests: lines land in a shared buffer readable
/// while the recorder still owns the sink.
#[derive(Debug, Default, Clone)]
pub struct MemorySink {
    lines: Arc<Mutex<Vec<String>>>,
}

impl MemorySink {
    /// An empty in-memory sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// A shared handle to the captured lines (clone before boxing the
    /// sink into a recorder).
    pub fn buffer(&self) -> Arc<Mutex<Vec<String>>> {
        Arc::clone(&self.lines)
    }

    /// The captured lines joined by `\n` — ready for [`RunRecord::parse`].
    pub fn contents(&self) -> String {
        self.lines.lock().expect("memory sink poisoned").join("\n")
    }
}

impl Sink for MemorySink {
    fn write_line(&mut self, line: &str) {
        self.lines.lock().expect("memory sink poisoned").push(line.to_string());
    }
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// The `run_start` payload: run identity plus the full config snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunStartEvent {
    /// Schema identifier; always [`SCHEMA`] for records this crate writes.
    pub schema: String,
    /// DDP world size N.
    pub world_size: u64,
    /// Per-rank batch B.
    pub per_rank_batch: u64,
    /// Budgeted optimizer steps.
    pub steps: u64,
    /// Run seed.
    pub seed: u64,
    /// Full training-config snapshot (schema-free JSON).
    pub config: Json,
}

/// The `step` payload: one optimizer step, with the five-phase wall-time
/// split (microseconds) and the step's simulated allreduce wire volume.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StepEvent {
    /// Optimizer step (0-based).
    pub step: u64,
    /// Epoch the step belongs to.
    pub epoch: u64,
    /// Learning rate applied at this step.
    pub lr: f32,
    /// Rank-averaged training loss (`null` in JSON when non-finite).
    pub loss: f32,
    /// Pre-clip global gradient norm.
    pub grad_norm: f32,
    /// Batch materialization time (µs).
    pub data_us: u64,
    /// Forward-pass time (µs, wall-apportioned across rank threads).
    pub forward_us: u64,
    /// Backward-pass time (µs, wall-apportioned across rank threads).
    pub backward_us: u64,
    /// Gradient-reduction time (µs): bucket folds + pairwise tree + scatter.
    pub allreduce_us: u64,
    /// Norm/clip/probe/update time (µs).
    pub optimizer_us: u64,
    /// End-to-end step wall time (µs), excluding any evaluation pass.
    pub total_us: u64,
    /// Simulated ring-allreduce wire volume for this step (bytes):
    /// `2·(N−1)/N ×` flat-bucket gradient bytes.
    pub comm_bytes: u64,
    /// Rank-averaged training metrics.
    pub train: BTreeMap<String, f32>,
}

impl StepEvent {
    /// Sum of the five phase durations — compare against [`Self::total_us`]
    /// to bound unattributed time.
    pub fn phase_sum_us(&self) -> u64 {
        self.data_us + self.forward_us + self.backward_us + self.allreduce_us + self.optimizer_us
    }
}

/// The `eval` payload: one validation pass.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalEvent {
    /// The optimizer step that triggered the evaluation.
    pub step: u64,
    /// Evaluation wall time (µs).
    pub duration_us: u64,
    /// Mean validation metrics over the evaluated batches.
    pub metrics: BTreeMap<String, f32>,
}

/// The `trial` payload: one completed hyperparameter-sweep trial.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrialEvent {
    /// Trial index (0-based) within the sweep.
    pub index: u64,
    /// Total trials in the sweep.
    pub total: u64,
    /// Name of the validation metric being minimized.
    pub objective_metric: String,
    /// Final objective value (`null` in JSON when non-finite).
    pub objective: f32,
    /// Loss-spike count during the trial.
    pub spikes: u64,
    /// The trial's training-config snapshot.
    pub config: Json,
}

/// The `summary` payload: run totals, per-phase quantiles, and counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SummaryEvent {
    /// Optimizer steps actually run.
    pub steps: u64,
    /// Whole-run wall time (µs).
    pub wall_time_us: u64,
    /// True when early stopping fired before the step budget was spent.
    pub stopped_early: bool,
    /// Optimizer steps skipped on non-finite gradients.
    pub skipped_updates: u64,
    /// Steps at which the instability probe flagged loss spikes.
    pub spike_steps: Vec<u64>,
    /// Per-histogram quantile summaries (keys like `phase/forward_us`).
    pub phases: BTreeMap<String, Quantiles>,
    /// Final counter values (keys like `comm/allreduce_bytes`).
    pub counters: BTreeMap<String, u64>,
    /// Final validation metrics (empty when the run never evaluated).
    pub final_val: BTreeMap<String, f32>,
}

/// One line of a run record. Serialized externally tagged — each JSONL
/// line is `{"<event type>": {...payload...}}` — with lowercase variant
/// names so the wire format matches `docs/RUN_RECORD.md` directly.
#[allow(non_camel_case_types)]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Event {
    /// Run header: schema + config snapshot. Always the first line.
    run_start(RunStartEvent),
    /// One optimizer step with phase timings.
    step(StepEvent),
    /// One validation pass.
    eval(EvalEvent),
    /// One sweep trial (only in sweep streams).
    trial(TrialEvent),
    /// Run footer: totals and quantiles. Always the last line.
    summary(SummaryEvent),
}

impl Event {
    /// The lowercase event-type name (the JSONL line's single key).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::run_start(_) => "run_start",
            Event::step(_) => "step",
            Event::eval(_) => "eval",
            Event::trial(_) => "trial",
            Event::summary(_) => "summary",
        }
    }
}

// ---------------------------------------------------------------------------
// RunRecorder
// ---------------------------------------------------------------------------

/// Aggregation state plus the event sink for one training run: a
/// [`PhaseAcc`] for span timing, named counters, named streaming
/// histograms, and the line sink the JSONL events go to.
///
/// The recorder is shared behind an [`Obs`] handle; all of its methods
/// take `&self` and are thread-safe.
///
/// ```
/// use matsciml_obs::{Event, MemorySink, Obs, RunRecord, RunRecorder, StepEvent};
/// use std::collections::BTreeMap;
///
/// let sink = MemorySink::new();
/// let buffer = sink.buffer();
/// let recorder = RunRecorder::new(Box::new(sink));
/// recorder.emit(&Event::step(StepEvent {
///     step: 0, epoch: 0, lr: 1e-3, loss: 0.5, grad_norm: 1.0,
///     data_us: 10, forward_us: 40, backward_us: 80, allreduce_us: 5,
///     optimizer_us: 15, total_us: 152, comm_bytes: 4096,
///     train: BTreeMap::new(),
/// }));
///
/// let text = buffer.lock().unwrap().join("\n");
/// let record = RunRecord::parse(&text).unwrap();
/// assert_eq!(record.steps().count(), 1);
/// assert_eq!(record.steps().next().unwrap().phase_sum_us(), 150);
/// ```
pub struct RunRecorder {
    acc: PhaseAcc,
    counters: Mutex<BTreeMap<&'static str, u64>>,
    hists: Mutex<BTreeMap<&'static str, StreamingHistogram>>,
    sink: Mutex<Box<dyn Sink>>,
}

impl RunRecorder {
    /// A recorder writing events to `sink`.
    pub fn new(sink: Box<dyn Sink>) -> RunRecorder {
        RunRecorder {
            acc: PhaseAcc::new(),
            counters: Mutex::new(BTreeMap::new()),
            hists: Mutex::new(BTreeMap::new()),
            sink: Mutex::new(sink),
        }
    }

    /// A recorder writing JSONL to `path` (parents created).
    pub fn jsonl(path: impl AsRef<Path>) -> io::Result<RunRecorder> {
        Ok(RunRecorder::new(Box::new(FileSink::create(path)?)))
    }

    /// The span accumulator bank.
    pub fn acc(&self) -> &PhaseAcc {
        &self.acc
    }

    /// Serialize one event and append it to the sink.
    pub fn emit(&self, event: &Event) {
        match serde_json::to_string(event) {
            Ok(line) => self.sink.lock().expect("sink poisoned").write_line(&line),
            Err(e) => eprintln!("matsciml-obs: dropping unserializable event: {e}"),
        }
    }

    /// Add `delta` to the named counter.
    pub fn count(&self, name: &'static str, delta: u64) {
        *self
            .counters
            .lock()
            .expect("counters poisoned")
            .entry(name)
            .or_insert(0) += delta;
    }

    /// Snapshot all counters.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.counters
            .lock()
            .expect("counters poisoned")
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect()
    }

    /// Record one observation into the named streaming histogram.
    pub fn observe(&self, name: &'static str, value: f64) {
        self.hists
            .lock()
            .expect("histograms poisoned")
            .entry(name)
            .or_default()
            .observe(value);
    }

    /// Quantile summaries of every histogram.
    pub fn quantiles(&self) -> BTreeMap<String, Quantiles> {
        self.hists
            .lock()
            .expect("histograms poisoned")
            .iter()
            .map(|(k, h)| (k.to_string(), h.quantiles()))
            .collect()
    }

    /// Flush the sink.
    pub fn flush(&self) {
        self.sink.lock().expect("sink poisoned").flush();
    }
}

// ---------------------------------------------------------------------------
// Obs: the handle instrumented code is written against
// ---------------------------------------------------------------------------

/// The observability handle threaded through training code. Either
/// disabled (`None` inside — every call is one branch, no clock reads, no
/// locks) or backed by a shared [`RunRecorder`].
///
/// Cloning an `Obs` clones the handle, not the recorder: clones aggregate
/// into the same run record.
#[derive(Clone, Default)]
pub struct Obs {
    rec: Option<Arc<RunRecorder>>,
}

impl Obs {
    /// The disabled handle: all instrumentation short-circuits.
    pub fn disabled() -> Obs {
        Obs { rec: None }
    }

    /// An enabled handle over `recorder`.
    pub fn recording(recorder: RunRecorder) -> Obs {
        Obs {
            rec: Some(Arc::new(recorder)),
        }
    }

    /// An enabled handle writing JSONL to `path` (parents created).
    pub fn jsonl(path: impl AsRef<Path>) -> io::Result<Obs> {
        Ok(Obs::recording(RunRecorder::jsonl(path)?))
    }

    /// An enabled handle over the no-op sink: aggregates spans, counters,
    /// and histograms (e.g. for `--trace` summaries) but writes nothing.
    pub fn null() -> Obs {
        Obs::recording(RunRecorder::new(Box::new(NullSink)))
    }

    /// Whether instrumentation is live.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.rec.is_some()
    }

    /// The backing recorder, when enabled.
    pub fn recorder(&self) -> Option<&RunRecorder> {
        self.rec.as_deref()
    }

    /// Start a span over `phase`; `None` (and no clock read) when disabled.
    #[inline]
    pub fn span(&self, phase: Phase) -> Option<Span<'_>> {
        self.rec.as_ref().map(|r| Span::new(r.acc(), phase))
    }

    /// A raw monotonic timestamp for multi-section timing; `None` (and no
    /// clock read) when disabled. Pair with [`Obs::lap_ns`].
    #[inline]
    pub fn timer(&self) -> Option<Instant> {
        self.rec.as_ref().map(|_| Instant::now())
    }

    /// Nanoseconds since a [`Obs::timer`] timestamp (0 when disabled).
    #[inline]
    pub fn lap_ns(t: Option<Instant>) -> u64 {
        t.map_or(0, |t0| t0.elapsed().as_nanos() as u64)
    }

    /// Add `ns` to `phase` directly (used for wall-apportioned phases).
    #[inline]
    pub fn add_phase_ns(&self, phase: Phase, ns: u64) {
        if let Some(r) = &self.rec {
            r.acc().add_ns(phase, ns);
        }
    }

    /// Drain `phase`, returning whole microseconds (0 when disabled).
    #[inline]
    pub fn take_phase_us(&self, phase: Phase) -> u64 {
        self.rec.as_ref().map_or(0, |r| r.acc().take_ns(phase) / 1_000)
    }

    /// Add `delta` to a named counter (no-op when disabled).
    #[inline]
    pub fn count(&self, name: &'static str, delta: u64) {
        if let Some(r) = &self.rec {
            r.count(name, delta);
        }
    }

    /// Current value of a named counter (0 when disabled or absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.rec
            .as_ref()
            .and_then(|r| r.counters.lock().expect("counters poisoned").get(name).copied())
            .unwrap_or(0)
    }

    /// Record into a named streaming histogram (no-op when disabled).
    #[inline]
    pub fn observe(&self, name: &'static str, value: f64) {
        if let Some(r) = &self.rec {
            r.observe(name, value);
        }
    }

    /// Emit one event (no-op when disabled).
    pub fn emit(&self, event: &Event) {
        if let Some(r) = &self.rec {
            r.emit(event);
        }
    }

    /// Flush the sink (no-op when disabled).
    pub fn flush(&self) {
        if let Some(r) = &self.rec {
            r.flush();
        }
    }
}

// ---------------------------------------------------------------------------
// RunRecord: parse + validate a recorded stream
// ---------------------------------------------------------------------------

/// A parsed run record: the event stream read back from JSONL, with the
/// structural validation the schema promises.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// The events, in stream order.
    pub events: Vec<Event>,
}

impl RunRecord {
    /// Parse a JSONL stream (blank lines ignored).
    pub fn parse(text: &str) -> Result<RunRecord, serde_json::Error> {
        let events = text
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(serde_json::from_str::<Event>)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(RunRecord { events })
    }

    /// The run header, if present.
    pub fn run_start(&self) -> Option<&RunStartEvent> {
        self.events.iter().find_map(|e| match e {
            Event::run_start(r) => Some(r),
            _ => None,
        })
    }

    /// All step events, in order.
    pub fn steps(&self) -> impl Iterator<Item = &StepEvent> {
        self.events.iter().filter_map(|e| match e {
            Event::step(s) => Some(s),
            _ => None,
        })
    }

    /// All eval events, in order.
    pub fn evals(&self) -> impl Iterator<Item = &EvalEvent> {
        self.events.iter().filter_map(|e| match e {
            Event::eval(v) => Some(v),
            _ => None,
        })
    }

    /// The run footer, if present.
    pub fn summary(&self) -> Option<&SummaryEvent> {
        self.events.iter().find_map(|e| match e {
            Event::summary(s) => Some(s),
            _ => None,
        })
    }

    /// Metrics of the last evaluation in the stream — replaying the
    /// record's answer to "what did validation end at?".
    pub fn final_eval_metrics(&self) -> Option<&BTreeMap<String, f32>> {
        self.events.iter().rev().find_map(|e| match e {
            Event::eval(v) => Some(&v.metrics),
            _ => None,
        })
    }

    /// Check the structural invariants `docs/RUN_RECORD.md` documents:
    /// the stream starts with a `run_start` carrying the known schema id,
    /// ends with a `summary`, step indices are strictly increasing, every
    /// eval references an emitted step, and each step's phase timings sum
    /// to no more than its `total_us` (plus 1ms rounding slack).
    pub fn validate(&self) -> Result<(), String> {
        let first = self.events.first().ok_or("empty run record")?;
        let Event::run_start(start) = first else {
            return Err(format!("first event is `{}`, expected `run_start`", first.kind()));
        };
        if start.schema != SCHEMA {
            return Err(format!(
                "schema `{}` does not match this reader's `{SCHEMA}`",
                start.schema
            ));
        }
        match self.events.last() {
            Some(Event::summary(_)) => {}
            Some(other) => {
                return Err(format!("last event is `{}`, expected `summary`", other.kind()))
            }
            None => unreachable!("non-empty checked above"),
        }
        let mut prev_step: Option<u64> = None;
        let mut seen_steps = Vec::new();
        for s in self.steps() {
            if let Some(p) = prev_step {
                if s.step <= p {
                    return Err(format!("step indices not increasing: {p} then {}", s.step));
                }
            }
            prev_step = Some(s.step);
            seen_steps.push(s.step);
            if s.phase_sum_us() > s.total_us + 1_000 {
                return Err(format!(
                    "step {}: phase sum {}µs exceeds total {}µs",
                    s.step,
                    s.phase_sum_us(),
                    s.total_us
                ));
            }
        }
        for v in self.evals() {
            if !seen_steps.contains(&v.step) {
                return Err(format!("eval at step {} has no matching step event", v.step));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_event(step: u64) -> StepEvent {
        StepEvent {
            step,
            epoch: 0,
            lr: 1e-3,
            loss: 0.5,
            grad_norm: 2.0,
            data_us: 100,
            forward_us: 400,
            backward_us: 800,
            allreduce_us: 50,
            optimizer_us: 150,
            total_us: 1550,
            comm_bytes: 1024,
            train: [("loss".to_string(), 0.5)].into_iter().collect(),
        }
    }

    fn start_event() -> RunStartEvent {
        RunStartEvent {
            schema: SCHEMA.to_string(),
            world_size: 2,
            per_rank_batch: 4,
            steps: 2,
            seed: 7,
            config: Json::snapshot(&[("lr".to_string(), 0.001f32)].into_iter().collect::<BTreeMap<_, _>>())
                .unwrap(),
        }
    }

    fn summary_event() -> SummaryEvent {
        SummaryEvent {
            steps: 2,
            wall_time_us: 3100,
            stopped_early: false,
            skipped_updates: 0,
            spike_steps: vec![1],
            phases: BTreeMap::new(),
            counters: [("comm/allreduce_bytes".to_string(), 2048)].into_iter().collect(),
            final_val: [("mae".to_string(), 0.25)].into_iter().collect(),
        }
    }

    #[test]
    fn events_roundtrip_through_jsonl() {
        let events = vec![
            Event::run_start(start_event()),
            Event::step(step_event(0)),
            Event::eval(EvalEvent {
                step: 0,
                duration_us: 900,
                metrics: [("mae".to_string(), 0.3)].into_iter().collect(),
            }),
            Event::step(step_event(1)),
            Event::summary(summary_event()),
        ];
        let recorder = RunRecorder::new(Box::new(MemorySink::new()));
        // Render through the same path the recorder uses.
        let text: Vec<String> = events.iter().map(|e| serde_json::to_string(e).unwrap()).collect();
        drop(recorder);
        let record = RunRecord::parse(&text.join("\n")).unwrap();
        record.validate().unwrap();
        assert_eq!(record.events.len(), 5);
        assert_eq!(record.steps().count(), 2);
        assert_eq!(record.evals().count(), 1);
        assert_eq!(record.run_start().unwrap().world_size, 2);
        assert_eq!(record.summary().unwrap().spike_steps, vec![1]);
        assert_eq!(record.final_eval_metrics().unwrap()["mae"], 0.3);
    }

    #[test]
    fn wire_format_is_single_key_lowercase_objects() {
        let line = serde_json::to_string(&Event::step(step_event(3))).unwrap();
        assert!(line.starts_with("{\"step\":{"), "got {line}");
        let line = serde_json::to_string(&Event::run_start(start_event())).unwrap();
        assert!(line.starts_with("{\"run_start\":{"), "got {line}");
    }

    #[test]
    fn obs_handles_share_one_recorder() {
        let sink = MemorySink::new();
        let buffer = sink.buffer();
        let obs = Obs::recording(RunRecorder::new(Box::new(sink)));
        let clone = obs.clone();
        obs.count("x", 2);
        clone.count("x", 3);
        assert_eq!(obs.counter("x"), 5);
        clone.emit(&Event::step(step_event(0)));
        assert_eq!(buffer.lock().unwrap().len(), 1);
    }

    #[test]
    fn disabled_obs_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.enabled());
        assert!(obs.span(Phase::Forward).is_none());
        assert!(obs.timer().is_none());
        assert_eq!(Obs::lap_ns(None), 0);
        obs.count("x", 1);
        assert_eq!(obs.counter("x"), 0);
        obs.observe("h", 1.0);
        obs.emit(&Event::step(step_event(0)));
        obs.flush(); // all no-ops; nothing to assert beyond not panicking
    }

    #[test]
    fn validate_rejects_malformed_streams() {
        // Missing run_start.
        let text = serde_json::to_string(&Event::summary(summary_event())).unwrap();
        assert!(RunRecord::parse(&text).unwrap().validate().is_err());

        // Wrong schema id.
        let mut start = start_event();
        start.schema = "other/v0".into();
        let text = [
            serde_json::to_string(&Event::run_start(start)).unwrap(),
            serde_json::to_string(&Event::summary(summary_event())).unwrap(),
        ]
        .join("\n");
        let err = RunRecord::parse(&text).unwrap().validate().unwrap_err();
        assert!(err.contains("schema"), "{err}");

        // Phase sum exceeding total.
        let mut bad = step_event(0);
        bad.total_us = 10;
        let text = [
            serde_json::to_string(&Event::run_start(start_event())).unwrap(),
            serde_json::to_string(&Event::step(bad)).unwrap(),
            serde_json::to_string(&Event::summary(summary_event())).unwrap(),
        ]
        .join("\n");
        let err = RunRecord::parse(&text).unwrap().validate().unwrap_err();
        assert!(err.contains("phase sum"), "{err}");

        // Non-increasing step indices.
        let text = [
            serde_json::to_string(&Event::run_start(start_event())).unwrap(),
            serde_json::to_string(&Event::step(step_event(1))).unwrap(),
            serde_json::to_string(&Event::step(step_event(1))).unwrap(),
            serde_json::to_string(&Event::summary(summary_event())).unwrap(),
        ]
        .join("\n");
        assert!(RunRecord::parse(&text).unwrap().validate().is_err());
    }

    #[test]
    fn json_snapshot_roundtrips_nested_values() {
        #[derive(Serialize)]
        struct Cfg {
            lr: f32,
            steps: u64,
            clip: Option<f32>,
            name: String,
        }
        let j = Json::snapshot(&Cfg {
            lr: 1e-3,
            steps: 20,
            clip: None,
            name: "run".into(),
        })
        .unwrap();
        let s = serde_json::to_string(&j).unwrap();
        let back: Json = serde_json::from_str(&s).unwrap();
        assert_eq!(back.get("steps"), Some(&Content::I64(20)));
        assert_eq!(back.get("name"), Some(&Content::Str("run".into())));
        assert_eq!(back.get("clip"), Some(&Content::Null));
        assert!(back.get("missing").is_none());
    }

    #[test]
    fn nonfinite_metrics_survive_as_nan() {
        let mut ev = step_event(0);
        ev.loss = f32::NAN; // a diverged step — exactly what Figs. 3/6 record
        let line = serde_json::to_string(&Event::step(ev)).unwrap();
        let back: Event = serde_json::from_str(&line).unwrap();
        match back {
            Event::step(s) => assert!(s.loss.is_nan()),
            other => panic!("wrong variant {}", other.kind()),
        }
    }
}
