//! Monotonic, nestable, thread-aware timing: [`Phase`], [`PhaseAcc`], and
//! the RAII [`Span`] guard.
//!
//! The design goal is that DDP rank threads can time their own work
//! without coordination: a [`PhaseAcc`] is a bank of relaxed atomic
//! nanosecond counters, one per [`Phase`], so any number of rayon workers
//! can add elapsed time concurrently and the per-phase totals aggregate
//! correctly. All timing uses [`std::time::Instant`], which is monotonic —
//! wall-clock adjustments never corrupt a span.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A named phase of the training loop. The five *step phases*
/// ([`Phase::STEP_PHASES`]) partition one optimizer step; [`Phase::Eval`]
/// and [`Phase::Step`] time evaluation passes and whole steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Batch materialization: dataset sampling + transform pipeline.
    Data,
    /// Per-rank collate + forward pass (summed across rank threads, then
    /// apportioned to wall time by the DDP step — see `matsciml-train`).
    Forward,
    /// Per-rank backward pass (tape traversal).
    Backward,
    /// Gradient reduction: per-rank fold into slot buckets, the pairwise
    /// bucket tree, and the scatter back into the parameter store.
    Allreduce,
    /// Gradient norm/clip, instability probe, and the parameter update.
    Optimizer,
    /// A validation pass (not part of the step-phase partition).
    Eval,
    /// One whole optimizer step, end to end.
    Step,
}

impl Phase {
    /// Every phase, in declaration order.
    pub const ALL: [Phase; 7] = [
        Phase::Data,
        Phase::Forward,
        Phase::Backward,
        Phase::Allreduce,
        Phase::Optimizer,
        Phase::Eval,
        Phase::Step,
    ];

    /// The five phases that partition one optimizer step; their recorded
    /// durations sum to (approximately) the step's `total_us`.
    pub const STEP_PHASES: [Phase; 5] = [
        Phase::Data,
        Phase::Forward,
        Phase::Backward,
        Phase::Allreduce,
        Phase::Optimizer,
    ];

    /// The stable lowercase name used in run-record events and histogram
    /// keys (documented in `docs/RUN_RECORD.md`).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Data => "data",
            Phase::Forward => "forward",
            Phase::Backward => "backward",
            Phase::Allreduce => "allreduce",
            Phase::Optimizer => "optimizer",
            Phase::Eval => "eval",
            Phase::Step => "step",
        }
    }

    fn idx(self) -> usize {
        match self {
            Phase::Data => 0,
            Phase::Forward => 1,
            Phase::Backward => 2,
            Phase::Allreduce => 3,
            Phase::Optimizer => 4,
            Phase::Eval => 5,
            Phase::Step => 6,
        }
    }
}

/// A bank of per-phase nanosecond accumulators, safe to update from many
/// threads at once (relaxed atomics — totals are exact, ordering between
/// phases is irrelevant).
#[derive(Debug, Default)]
pub struct PhaseAcc {
    ns: [AtomicU64; Phase::ALL.len()],
}

impl PhaseAcc {
    /// A zeroed accumulator bank.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `ns` nanoseconds to `phase`.
    #[inline]
    pub fn add_ns(&self, phase: Phase, ns: u64) {
        self.ns[phase.idx()].fetch_add(ns, Ordering::Relaxed);
    }

    /// Current total for `phase` in nanoseconds.
    #[inline]
    pub fn get_ns(&self, phase: Phase) -> u64 {
        self.ns[phase.idx()].load(Ordering::Relaxed)
    }

    /// Read *and reset* the total for `phase` — how the trainer drains
    /// each phase once per step when composing a `step` event.
    #[inline]
    pub fn take_ns(&self, phase: Phase) -> u64 {
        self.ns[phase.idx()].swap(0, Ordering::Relaxed)
    }
}

/// An RAII timing guard: measures from construction to drop on a
/// monotonic clock and adds the elapsed nanoseconds to one [`Phase`] of a
/// [`PhaseAcc`]. Spans nest naturally (each guard owns its own start
/// instant) and are thread-aware (the accumulator is atomic).
///
/// ```
/// use matsciml_obs::{Phase, PhaseAcc, Span};
///
/// let acc = PhaseAcc::new();
/// {
///     let _outer = Span::new(&acc, Phase::Step);
///     let inner = Span::new(&acc, Phase::Forward); // nested span
///     std::thread::sleep(std::time::Duration::from_millis(2));
///     let ns = inner.stop();
///     assert!(ns >= 1_000_000, "slept ~2ms, recorded {ns}ns");
/// } // _outer records Phase::Step here
/// assert!(acc.get_ns(Phase::Step) >= acc.get_ns(Phase::Forward));
/// ```
#[derive(Debug)]
pub struct Span<'a> {
    acc: &'a PhaseAcc,
    phase: Phase,
    start: Instant,
}

impl<'a> Span<'a> {
    /// Start timing `phase` against `acc`.
    #[inline]
    pub fn new(acc: &'a PhaseAcc, phase: Phase) -> Self {
        Span {
            acc,
            phase,
            start: Instant::now(),
        }
    }

    /// Nanoseconds elapsed so far, without stopping the span.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Stop explicitly, record, and return the elapsed nanoseconds
    /// (dropping the span records the same time but discards the value).
    pub fn stop(self) -> u64 {
        let ns = self.elapsed_ns();
        self.acc.add_ns(self.phase, ns);
        std::mem::forget(self); // Drop would double-count
        ns
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.acc.add_ns(self.phase, self.start.elapsed().as_nanos() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_have_stable_names_and_indices() {
        let names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            ["data", "forward", "backward", "allreduce", "optimizer", "eval", "step"]
        );
        // Indices are a bijection onto 0..N.
        let mut idx: Vec<usize> = Phase::ALL.iter().map(|p| p.idx()).collect();
        idx.sort_unstable();
        assert_eq!(idx, (0..Phase::ALL.len()).collect::<Vec<_>>());
    }

    #[test]
    fn acc_adds_takes_and_resets() {
        let acc = PhaseAcc::new();
        acc.add_ns(Phase::Forward, 5);
        acc.add_ns(Phase::Forward, 7);
        acc.add_ns(Phase::Backward, 1);
        assert_eq!(acc.get_ns(Phase::Forward), 12);
        assert_eq!(acc.take_ns(Phase::Forward), 12);
        assert_eq!(acc.get_ns(Phase::Forward), 0);
        assert_eq!(acc.get_ns(Phase::Backward), 1);
    }

    #[test]
    fn spans_aggregate_across_threads() {
        let acc = PhaseAcc::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let span = Span::new(&acc, Phase::Forward);
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    span.stop();
                });
            }
        });
        // Four threads × ≥1ms each: thread-summed time is ≥ 4ms even if the
        // threads overlapped in wall time — that's the "thread-aware" part.
        assert!(acc.get_ns(Phase::Forward) >= 4_000_000);
    }

    #[test]
    fn stop_and_drop_record_once_each() {
        let acc = PhaseAcc::new();
        let s = Span::new(&acc, Phase::Eval);
        s.stop();
        let before = acc.get_ns(Phase::Eval);
        drop(Span::new(&acc, Phase::Eval));
        let after = acc.get_ns(Phase::Eval);
        assert!(after >= before, "drop records exactly once more");
    }
}
