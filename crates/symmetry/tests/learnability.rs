//! Learnability check for the pretraining task: the point-group label must
//! be (partially) recoverable from *invariant* geometry alone — otherwise
//! an E(3)-invariant encoder could never learn it and the pretraining
//! experiments would be vacuous.
//!
//! The oracle here is deliberately crude — a nearest-centroid classifier
//! over fixed invariant features (point count, pairwise-distance histogram
//! moments) — and must still clearly beat the 1/32 chance level.

use matsciml_symmetry::{all_point_groups, SymmetryConfig};
use matsciml_tensor::Vec3;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Rotation/translation/permutation-invariant feature vector.
fn invariant_features(points: &[Vec3]) -> Vec<f32> {
    let n = points.len();
    let mut dists: Vec<f32> = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in i + 1..n {
            dists.push((points[i] - points[j]).norm());
        }
    }
    dists.sort_by(f32::total_cmp);
    let mean = dists.iter().sum::<f32>() / dists.len() as f32;
    let var = dists.iter().map(|d| (d - mean) * (d - mean)).sum::<f32>() / dists.len() as f32;
    let min = dists[0];
    let max = dists[dists.len() - 1];
    let median = dists[dists.len() / 2];
    // Degeneracy count: near-equal consecutive distances — symmetry
    // produces repeated pair distances.
    let degenerate = dists
        .windows(2)
        .filter(|w| (w[1] - w[0]).abs() < 0.03)
        .count() as f32
        / dists.len() as f32;
    vec![n as f32 / 48.0, mean, var.sqrt(), min, max, median, degenerate]
}

#[test]
fn point_group_is_recoverable_from_invariants() {
    let cfg = SymmetryConfig {
        noise_std: 0.01,
        ..SymmetryConfig::default()
    };
    let k = all_point_groups().len();
    let train_per_class = 24;
    let test_per_class = 8;
    let mut rng = StdRng::seed_from_u64(42);

    // Class centroids in feature space.
    let mut centroids = vec![vec![0.0f32; 7]; k];
    for (class, centroid) in centroids.iter_mut().enumerate() {
        for _ in 0..train_per_class {
            let s = cfg.generate_for_group(class, &mut rng);
            for (c, f) in centroid.iter_mut().zip(invariant_features(&s.points)) {
                *c += f / train_per_class as f32;
            }
        }
    }

    // Nearest-centroid classification of held-out clouds.
    let mut correct = 0;
    let mut total = 0;
    for class in 0..k {
        for _ in 0..test_per_class {
            let s = cfg.generate_for_group(class, &mut rng);
            let f = invariant_features(&s.points);
            let pred = centroids
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    let da: f32 = a.iter().zip(&f).map(|(x, y)| (x - y) * (x - y)).sum();
                    let db: f32 = b.iter().zip(&f).map(|(x, y)| (x - y) * (x - y)).sum();
                    da.total_cmp(&db)
                })
                .map(|(i, _)| i)
                .unwrap();
            correct += usize::from(pred == class);
            total += 1;
        }
    }
    let acc = correct as f32 / total as f32;
    let chance = 1.0 / k as f32;
    // Empirically the crude oracle reaches ~3.7x chance (the trained
    // E(n)-GNN reaches ~8x); require a 3x margin as the learnability bar.
    assert!(
        acc > 3.0 * chance,
        "invariant oracle should beat 3x chance: acc {acc:.3}, chance {chance:.3}"
    );
}

#[test]
fn distinct_groups_produce_distinct_distance_spectra() {
    // C1 vs Oh: radically different symmetry must show in the degeneracy
    // of the pairwise-distance multiset.
    let cfg = SymmetryConfig {
        noise_std: 0.0,
        random_orientation: false,
        ..SymmetryConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(7);
    let c1 = cfg.generate_for_group(0, &mut rng); // C1
    let oh = cfg.generate_for_group(31, &mut rng); // Oh
    let degeneracy = |pts: &[Vec3]| {
        let mut d = Vec::new();
        for i in 0..pts.len() {
            for j in i + 1..pts.len() {
                d.push((pts[i] - pts[j]).norm());
            }
        }
        d.sort_by(f32::total_cmp);
        d.windows(2).filter(|w| (w[1] - w[0]).abs() < 1e-4).count() as f32 / d.len() as f32
    };
    let dc1 = degeneracy(&c1.points);
    let doh = degeneracy(&oh.points);
    assert!(
        doh > dc1 + 0.2,
        "Oh must have far more degenerate pair distances than C1: {doh} vs {dc1}"
    );
}
