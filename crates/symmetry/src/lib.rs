//! Crystallographic point groups and the synthetic symmetry-pretraining
//! dataset generator (the paper's first key contribution, Section 3.1).
//!
//! A pretraining sample is built by drawing a handful of seed particles,
//! replicating them through every operation of a randomly chosen
//! crystallographic point group, deduplicating coincident images, jittering
//! with Gaussian noise, and (optionally) applying a random global rotation
//! so the symmetry axes are not world-aligned. The label is the point-group
//! index — a 32-way classification task whose solution requires the encoder
//! to internalize 3-D structural symmetry, with no chemistry involved.

//! # Example
//!
//! ```
//! use matsciml_symmetry::{all_point_groups, group_by_name, SymmetryConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! assert_eq!(all_point_groups().len(), 32);
//! assert_eq!(group_by_name("Oh").unwrap().order(), 48);
//!
//! let cfg = SymmetryConfig::default();
//! let sample = cfg.generate(&mut StdRng::seed_from_u64(0));
//! assert!((sample.label as usize) < cfg.num_classes());
//! assert!(!sample.points.is_empty());
//! ```

#![warn(missing_docs)]

mod generate;
mod groups;

pub use generate::{SymmetryConfig, SymmetrySample};
pub use groups::{all_point_groups, group_by_name, PointGroup};
