//! The 32 crystallographic point groups, built by closing generator sets.

use std::f32::consts::PI;
use std::sync::OnceLock;

use matsciml_tensor::{Mat3, Vec3};

/// A finite point group: its Schoenflies name and complete operation list
/// (orthogonal 3×3 matrices, identity included).
#[derive(Debug, Clone)]
pub struct PointGroup {
    /// Schoenflies symbol, e.g. `"C4v"`, `"Oh"`.
    pub name: &'static str,
    /// Every group element.
    pub ops: Vec<Mat3>,
}

impl PointGroup {
    /// Group order (number of elements).
    pub fn order(&self) -> usize {
        self.ops.len()
    }
}

const TOL: f32 = 1e-4;

/// Entry values that occur in crystallographic point-group matrices when
/// the principal axis is z and the C2'/σv elements are x-aligned:
/// 0, ±1/2, ±√3/2, ±1. Snapping each product to this lattice keeps the
/// closure exact despite f32 rounding in repeated multiplication.
fn snap(m: Mat3) -> Mat3 {
    const VALUES: [f32; 4] = [0.0, 0.5, 0.866_025_4, 1.0];
    let mut rows = m.rows;
    for row in &mut rows {
        for v in row.iter_mut() {
            let mag = v.abs();
            let nearest = VALUES
                .iter()
                .copied()
                .min_by(|a, b| (a - mag).abs().total_cmp(&(b - mag).abs()))
                .unwrap();
            assert!(
                (nearest - mag).abs() < 1e-3,
                "matrix entry {v} is not near the crystallographic value lattice"
            );
            *v = nearest.copysign(*v);
        }
    }
    Mat3 { rows }
}

/// Close a generator set under multiplication. Orders here are ≤ 48, so the
/// quadratic fixed-point iteration is instantaneous.
fn close(generators: &[Mat3]) -> Vec<Mat3> {
    let mut ops = vec![Mat3::IDENTITY];
    let mut frontier: Vec<Mat3> = generators.iter().copied().map(snap).collect();
    while let Some(m) = frontier.pop() {
        if ops.iter().any(|o| o.max_abs_diff(&m) < TOL) {
            continue;
        }
        // New element: record it, then seed products with everything known
        // (both orders, including m·m) back onto the frontier.
        ops.push(m);
        for o in ops.clone() {
            frontier.push(snap(o * m));
            frontier.push(snap(m * o));
        }
        assert!(
            ops.len() <= 48,
            "group closure exceeded the crystallographic maximum of 48 — bad generators"
        );
    }
    ops
}

fn rot_z(n: u32) -> Mat3 {
    Mat3::rotation(Vec3::new(0.0, 0.0, 1.0), 2.0 * PI / n as f32)
}

fn s_z(n: u32) -> Mat3 {
    Mat3::rotoreflection(Vec3::new(0.0, 0.0, 1.0), 2.0 * PI / n as f32)
}

fn c2_x() -> Mat3 {
    Mat3::rotation(Vec3::new(1.0, 0.0, 0.0), PI)
}

fn sigma_h() -> Mat3 {
    Mat3::reflection(Vec3::new(0.0, 0.0, 1.0))
}

fn sigma_v() -> Mat3 {
    Mat3::reflection(Vec3::new(1.0, 0.0, 0.0))
}

fn c3_diag() -> Mat3 {
    Mat3::rotation(Vec3::new(1.0, 1.0, 1.0), 2.0 * PI / 3.0)
}

fn inv() -> Mat3 {
    Mat3::inversion()
}

/// All 32 crystallographic point groups, in a fixed label order shared by
/// the pretraining dataset and the classifier head. Built once and cached.
pub fn all_point_groups() -> &'static [PointGroup] {
    static GROUPS: OnceLock<Vec<PointGroup>> = OnceLock::new();
    GROUPS.get_or_init(|| {
        let g = |name: &'static str, gens: &[Mat3]| PointGroup {
            name,
            ops: close(gens),
        };
        vec![
            // Triclinic
            g("C1", &[]),
            g("Ci", &[inv()]),
            // Monoclinic
            g("C2", &[rot_z(2)]),
            g("Cs", &[sigma_h()]),
            g("C2h", &[rot_z(2), sigma_h()]),
            // Orthorhombic
            g("D2", &[rot_z(2), c2_x()]),
            g("C2v", &[rot_z(2), sigma_v()]),
            g("D2h", &[rot_z(2), c2_x(), sigma_h()]),
            // Tetragonal
            g("C4", &[rot_z(4)]),
            g("S4", &[s_z(4)]),
            g("C4h", &[rot_z(4), sigma_h()]),
            g("D4", &[rot_z(4), c2_x()]),
            g("C4v", &[rot_z(4), sigma_v()]),
            g("D2d", &[s_z(4), c2_x()]),
            g("D4h", &[rot_z(4), c2_x(), sigma_h()]),
            // Trigonal
            g("C3", &[rot_z(3)]),
            g("S6", &[s_z(6)]),
            g("D3", &[rot_z(3), c2_x()]),
            g("C3v", &[rot_z(3), sigma_v()]),
            g("D3d", &[s_z(6), c2_x()]),
            // Hexagonal
            g("C6", &[rot_z(6)]),
            g("C3h", &[rot_z(3), sigma_h()]),
            g("C6h", &[rot_z(6), sigma_h()]),
            g("D6", &[rot_z(6), c2_x()]),
            g("C6v", &[rot_z(6), sigma_v()]),
            g("D3h", &[rot_z(3), sigma_h(), c2_x()]),
            g("D6h", &[rot_z(6), c2_x(), sigma_h()]),
            // Cubic
            g("T", &[rot_z(2), c3_diag()]),
            g("Th", &[rot_z(2), c3_diag(), inv()]),
            g("O", &[rot_z(4), c3_diag()]),
            g("Td", &[s_z(4), c3_diag()]),
            g("Oh", &[rot_z(4), c3_diag(), inv()]),
        ]
    })
}

/// Look up a group by Schoenflies symbol.
pub fn group_by_name(name: &str) -> Option<&'static PointGroup> {
    all_point_groups().iter().find(|g| g.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known orders of the 32 crystallographic point groups.
    const EXPECTED_ORDERS: &[(&str, usize)] = &[
        ("C1", 1),
        ("Ci", 2),
        ("C2", 2),
        ("Cs", 2),
        ("C2h", 4),
        ("D2", 4),
        ("C2v", 4),
        ("D2h", 8),
        ("C4", 4),
        ("S4", 4),
        ("C4h", 8),
        ("D4", 8),
        ("C4v", 8),
        ("D2d", 8),
        ("D4h", 16),
        ("C3", 3),
        ("S6", 6),
        ("D3", 6),
        ("C3v", 6),
        ("D3d", 12),
        ("C6", 6),
        ("C3h", 6),
        ("C6h", 12),
        ("D6", 12),
        ("C6v", 12),
        ("D3h", 12),
        ("D6h", 24),
        ("T", 12),
        ("Th", 24),
        ("O", 24),
        ("Td", 24),
        ("Oh", 48),
    ];

    #[test]
    fn there_are_exactly_32_groups() {
        assert_eq!(all_point_groups().len(), 32);
    }

    #[test]
    fn group_orders_match_crystallography() {
        for &(name, order) in EXPECTED_ORDERS {
            let g = group_by_name(name).unwrap_or_else(|| panic!("missing group {name}"));
            assert_eq!(g.order(), order, "group {name} has wrong order");
        }
    }

    #[test]
    fn every_element_is_orthogonal() {
        for g in all_point_groups() {
            for (i, op) in g.ops.iter().enumerate() {
                assert!(op.is_orthogonal(1e-4), "{}: element {i} not orthogonal", g.name);
                let d = op.det().abs();
                assert!((d - 1.0).abs() < 1e-4, "{}: |det| = {d}", g.name);
            }
        }
    }

    #[test]
    fn groups_are_closed_under_multiplication() {
        for g in all_point_groups() {
            for a in &g.ops {
                for b in &g.ops {
                    let p = *a * *b;
                    assert!(
                        g.ops.iter().any(|o| o.max_abs_diff(&p) < 1e-3),
                        "{} is not closed",
                        g.name
                    );
                }
            }
        }
    }

    #[test]
    fn groups_contain_inverses() {
        // For orthogonal matrices the inverse is the transpose.
        for g in all_point_groups() {
            for a in &g.ops {
                let inv = a.transpose();
                assert!(
                    g.ops.iter().any(|o| o.max_abs_diff(&inv) < 1e-3),
                    "{} is missing an inverse",
                    g.name
                );
            }
        }
    }

    #[test]
    fn identity_is_always_first() {
        for g in all_point_groups() {
            assert!(g.ops[0].max_abs_diff(&Mat3::IDENTITY) < 1e-6, "{}", g.name);
        }
    }

    #[test]
    fn proper_subgroups_relate_correctly() {
        // The rotation subgroup of Oh is O; check |Oh ∩ SO(3)| = 24.
        let oh = group_by_name("Oh").unwrap();
        let proper = oh.ops.iter().filter(|o| o.det() > 0.0).count();
        assert_eq!(proper, 24);
        // D4h's proper rotations form D4 (order 8).
        let d4h = group_by_name("D4h").unwrap();
        assert_eq!(d4h.ops.iter().filter(|o| o.det() > 0.0).count(), 8);
    }

    #[test]
    fn unknown_name_returns_none() {
        assert!(group_by_name("K7").is_none());
    }
}
