//! Synthetic point-cloud generation from symmetry groups.

use matsciml_tensor::{Mat3, Vec3};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::groups::all_point_groups;

/// Configuration for the pretraining generator.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SymmetryConfig {
    /// Target total point count per cloud; the seed count is derived as
    /// `max(1, target / group_order)` so every group yields clouds of
    /// comparable size.
    pub target_points: usize,
    /// Seed positions are drawn uniformly from a spherical shell with these
    /// radii, keeping seeds away from the origin (where all orbits collapse).
    pub radius_range: (f32, f32),
    /// Standard deviation of the Gaussian jitter applied after replication.
    pub noise_std: f32,
    /// Apply a uniformly random global rotation so symmetry axes are not
    /// world-aligned (forces the encoder to learn orientation-independent
    /// symmetry, and makes the task honest for non-equivariant baselines).
    pub random_orientation: bool,
}

impl Default for SymmetryConfig {
    fn default() -> Self {
        SymmetryConfig {
            target_points: 24,
            radius_range: (0.6, 1.4),
            noise_std: 0.02,
            random_orientation: true,
        }
    }
}

/// One pretraining sample: a point cloud and its point-group label.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SymmetrySample {
    /// The jittered, replicated particle positions.
    pub points: Vec<Vec3>,
    /// Index into [`all_point_groups`].
    pub label: u32,
}

impl SymmetryConfig {
    /// Number of classes the generator emits (always 32).
    pub fn num_classes(&self) -> usize {
        all_point_groups().len()
    }

    /// Generate one sample for the given group index.
    pub fn generate_for_group<R: Rng + ?Sized>(&self, group_idx: usize, rng: &mut R) -> SymmetrySample {
        let groups = all_point_groups();
        let group = &groups[group_idx];
        let order = group.order();
        let n_seeds = (self.target_points / order).max(1);

        let mut points: Vec<Vec3> = Vec::with_capacity(n_seeds * order);
        for _ in 0..n_seeds {
            let seed = self.sample_seed(rng);
            for op in &group.ops {
                let img = op.apply(seed);
                // Merge (near-)coincident images: a seed close to a
                // symmetry element maps onto itself — the crystallographic
                // "special position" case — so snap such orbits together.
                if !points.iter().any(|p| (*p - img).norm_sq() < 1e-4) {
                    points.push(img);
                }
            }
        }

        // Random global orientation before jitter.
        if self.random_orientation {
            let rot = random_rotation(rng);
            for p in &mut points {
                *p = rot.apply(*p);
            }
        }

        if self.noise_std > 0.0 {
            for p in &mut points {
                *p = *p
                    + Vec3::new(
                        gauss(rng) * self.noise_std,
                        gauss(rng) * self.noise_std,
                        gauss(rng) * self.noise_std,
                    );
            }
        }

        SymmetrySample {
            points,
            label: group_idx as u32,
        }
    }

    /// Generate one sample with a uniformly random group label — the
    /// paper's key data property: classes can be sampled uniformly at
    /// arbitrary scale, unlike selection-biased real datasets.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> SymmetrySample {
        let idx = rng.gen_range(0..all_point_groups().len());
        self.generate_for_group(idx, rng)
    }

    /// Uniform point in the configured spherical shell.
    fn sample_seed<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec3 {
        let (lo, hi) = self.radius_range;
        // Uniform direction via normalized Gaussian triple.
        let dir = Vec3::new(gauss(rng), gauss(rng), gauss(rng)).normalized();
        // Uniform-in-volume radius within the shell.
        let u: f32 = rng.gen();
        let r = (lo.powi(3) + u * (hi.powi(3) - lo.powi(3))).cbrt();
        dir * r
    }
}

/// Uniformly random rotation (axis from a normalized Gaussian triple,
/// angle uniform in [0, 2π) — adequate isotropy for data augmentation).
pub(crate) fn random_rotation<R: Rng + ?Sized>(rng: &mut R) -> Mat3 {
    let axis = Vec3::new(gauss(rng), gauss(rng), gauss(rng)).normalized();
    let angle = rng.gen_range(0.0..(2.0 * std::f32::consts::PI));
    Mat3::rotation(axis, angle)
}

#[inline]
fn gauss<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    // Box–Muller, matching matsciml-tensor's initializers.
    let u1: f64 = loop {
        let u: f64 = rng.gen();
        if u > f64::EPSILON {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groups::group_by_name;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn noiseless() -> SymmetryConfig {
        SymmetryConfig {
            target_points: 24,
            radius_range: (0.8, 1.2),
            noise_std: 0.0,
            random_orientation: false,
        }
    }

    /// Check a cloud is invariant (as a set) under every group op.
    fn invariant_under(points: &[Vec3], group: &crate::PointGroup, tol: f32) -> bool {
        group.ops.iter().all(|op| {
            points.iter().all(|&p| {
                let img = op.apply(p);
                points.iter().any(|&q| (q - img).norm() < tol)
            })
        })
    }

    #[test]
    fn noiseless_clouds_are_exactly_symmetric() {
        let cfg = noiseless();
        let mut rng = StdRng::seed_from_u64(1);
        for (idx, group) in all_point_groups().iter().enumerate() {
            let s = cfg.generate_for_group(idx, &mut rng);
            assert_eq!(s.label, idx as u32);
            // Tolerance covers the generator's special-position merging
            // (images within 0.01 snap together).
            assert!(
                invariant_under(&s.points, group, 2e-2),
                "cloud for {} is not invariant under its own group",
                group.name
            );
        }
    }

    #[test]
    fn cloud_sizes_track_target() {
        let cfg = noiseless();
        let mut rng = StdRng::seed_from_u64(2);
        for idx in 0..all_point_groups().len() {
            let s = cfg.generate_for_group(idx, &mut rng);
            let order = all_point_groups()[idx].order();
            let seeds = (cfg.target_points / order).max(1);
            // Generic seeds each contribute a full orbit; the rare seed
            // near a symmetry element merges a few images.
            assert!(
                s.points.len() <= seeds * order && s.points.len() >= seeds * order / 2,
                "group {}: {} points for {} seeds x order {}",
                all_point_groups()[idx].name,
                s.points.len(),
                seeds,
                order
            );
        }
    }

    #[test]
    fn c1_cloud_is_generically_asymmetric() {
        // A C1 cloud should NOT be invariant under, e.g., C4 — otherwise
        // the classification task would be ill-posed.
        let cfg = noiseless();
        let mut rng = StdRng::seed_from_u64(3);
        let s = cfg.generate_for_group(0, &mut rng); // C1
        let c4 = group_by_name("C4").unwrap();
        assert!(!invariant_under(&s.points, c4, 1e-2));
    }

    #[test]
    fn noise_perturbs_but_preserves_scale() {
        let mut cfg = noiseless();
        cfg.noise_std = 0.02;
        let mut rng = StdRng::seed_from_u64(4);
        let s = cfg.generate_for_group(10, &mut rng);
        for p in &s.points {
            let r = p.norm();
            assert!(r > 0.5 && r < 1.5, "radius {r} outside jittered shell");
        }
    }

    #[test]
    fn random_orientation_rotates_cloud_rigidly() {
        let mut cfg = noiseless();
        cfg.random_orientation = true;
        let mut rng = StdRng::seed_from_u64(5);
        let s = cfg.generate_for_group(14, &mut rng); // D4h
        // Pairwise distance multiset must still be invariant under the
        // group in *some* orientation — cheap proxy: the cloud remains on
        // the shell and pair distances match those of an unrotated twin
        // generated from the same seed state. Instead we just verify rigid
        // motion: all radii preserved within fp error.
        for p in &s.points {
            let r = p.norm();
            assert!(r > 0.79 && r < 1.21);
        }
    }

    #[test]
    fn uniform_sampling_covers_all_classes() {
        let cfg = SymmetryConfig::default();
        let mut rng = StdRng::seed_from_u64(6);
        let mut seen = vec![false; cfg.num_classes()];
        for _ in 0..2000 {
            let s = cfg.generate(&mut rng);
            seen[s.label as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "some classes never sampled");
    }

    #[test]
    fn determinism_from_seed() {
        let cfg = SymmetryConfig::default();
        let a = cfg.generate(&mut StdRng::seed_from_u64(7));
        let b = cfg.generate(&mut StdRng::seed_from_u64(7));
        assert_eq!(a.label, b.label);
        assert_eq!(a.points.len(), b.points.len());
        for (p, q) in a.points.iter().zip(&b.points) {
            assert_eq!(p, q);
        }
    }
}
