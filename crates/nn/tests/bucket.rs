//! Equivalence and round-trip properties of the flat-gradient bucket
//! allreduce.
//!
//! The exact-equality tests use integer-valued `f32` gradients: every
//! partial sum stays well below 2^24, so addition is exact and *any*
//! bracketing must produce identical bits. That isolates the property
//! under test — the bucketed slot-fold + pairwise tree visits every rank
//! exactly once — from floating-point reassociation.

use matsciml_nn::bucket::{
    rank_range, reduce_slots, tree_reduce_into_first, BucketLayout, GradBucket,
};
use proptest::prelude::*;

/// Integer-valued gradient for (rank, span, element): deterministic, in
/// [-4, 4], so a 512-rank sum is exact in f32.
fn grad_at(rank: usize, span: usize, j: usize) -> f32 {
    ((rank * 31 + span * 7 + j) % 9) as f32 - 4.0
}

fn layout() -> BucketLayout {
    BucketLayout::from_numels(&[3, 8, 1, 5])
}

/// Reference allreduce: per-span left-fold over ranks 0..world in order.
fn naive_reduce(layout: &BucketLayout, world: usize) -> Vec<f32> {
    let mut total = vec![0.0f32; layout.total_scalars()];
    for rank in 0..world {
        for span in 0..layout.num_spans() {
            let (off, len) = layout.span(span);
            for j in 0..len {
                total[off + j] += grad_at(rank, span, j);
            }
        }
    }
    total
}

/// The production schedule: stream each slot's ranks into its bucket in
/// rank order, then pairwise-tree the slot buckets.
fn bucketed_reduce(layout: &BucketLayout, world: usize) -> Vec<f32> {
    let slots = reduce_slots(world);
    let mut buckets: Vec<GradBucket> = (0..slots)
        .map(|slot| {
            let mut b = GradBucket::zeros(layout.clone());
            for rank in rank_range(world, slots, slot) {
                for span in 0..layout.num_spans() {
                    let (_, len) = layout.span(span);
                    let g: Vec<f32> = (0..len).map(|j| grad_at(rank, span, j)).collect();
                    b.add_span(span, &g, 1.0);
                }
            }
            b
        })
        .collect();
    tree_reduce_into_first(&mut buckets);
    buckets[0].as_slice().to_vec()
}

#[test]
fn bucketed_tree_matches_naive_reduction_exactly() {
    let layout = layout();
    for world in [1usize, 2, 4, 7, 512] {
        assert_eq!(
            bucketed_reduce(&layout, world),
            naive_reduce(&layout, world),
            "world {world}: bucketed allreduce must equal the per-tensor fold bit-for-bit"
        );
    }
}

#[test]
fn slot_count_is_capped_for_large_worlds() {
    assert_eq!(reduce_slots(1), 1);
    assert_eq!(reduce_slots(7), 7);
    assert_eq!(reduce_slots(512), matsciml_nn::bucket::MAX_REDUCE_SLOTS);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Scatter (copy_span) then gather (span_slice) over a random span
    /// layout — including empty spans — recovers every per-span payload
    /// and never bleeds across span boundaries.
    #[test]
    fn flat_bucket_scatter_gather_round_trips(
        payloads in proptest::collection::vec(
            proptest::collection::vec(-1.0e3f32..1.0e3, 0..20),
            1..12,
        ),
    ) {
        let numels: Vec<usize> = payloads.iter().map(Vec::len).collect();
        let layout = BucketLayout::from_numels(&numels);
        prop_assert_eq!(layout.total_scalars(), numels.iter().sum::<usize>());

        let mut bucket = GradBucket::zeros(layout);
        for (i, p) in payloads.iter().enumerate() {
            bucket.copy_span(i, p);
        }
        for (i, p) in payloads.iter().enumerate() {
            prop_assert_eq!(
                bucket.span_slice(i),
                p.as_slice(),
                "span {} must round-trip unchanged", i
            );
        }
        // The flat view is exactly the concatenation, in span order.
        let flat: Vec<f32> = payloads.concat();
        prop_assert_eq!(bucket.as_slice(), flat.as_slice());
    }
}
