//! Integration tests for the normalization layers and the norm-selectable
//! output heads (the paper's Appendix A RMSNorm-vs-BatchNorm comparison).

use matsciml_autograd::Graph;
use matsciml_nn::{Activation, BatchNorm, ForwardCtx, NormKind, OutputHead, ParamSet, ResidualBlock};
use matsciml_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn batchnorm_layer_standardizes_then_applies_affine() {
    let mut ps = ParamSet::new();
    let bn = BatchNorm::new(&mut ps, "bn", 4);
    ps.value_mut(bn.gain).fill_inplace(2.0);
    ps.value_mut(bn.bias).fill_inplace(1.0);
    let mut rng = StdRng::seed_from_u64(1);
    let mut g = Graph::new();
    let x = g.input(Tensor::randn(&[128, 4], 5.0, 3.0, &mut rng));
    let y = bn.forward(&mut g, &ps, x);
    let out = g.value(y);
    for c in 0..4 {
        let col: Vec<f32> = (0..128).map(|r| out.at2(r, c)).collect();
        let mean: f32 = col.iter().sum::<f32>() / 128.0;
        let var: f32 = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 128.0;
        assert!((mean - 1.0).abs() < 1e-3, "col {c}: β should set the mean, got {mean}");
        assert!((var - 4.0).abs() < 0.05, "col {c}: γ² should set the variance, got {var}");
    }
}

#[test]
fn batchnorm_output_depends_on_batch_composition() {
    // The paper's complaint, reduced to a unit test: the *same sample*
    // normalizes differently depending on its batch mates.
    let mut ps = ParamSet::new();
    let bn = BatchNorm::new(&mut ps, "bn", 2);
    let mut rng = StdRng::seed_from_u64(2);
    let base = Tensor::randn(&[4, 2], 0.0, 1.0, &mut rng);
    let other_a = Tensor::randn(&[4, 2], 0.0, 1.0, &mut rng);
    let other_b = Tensor::randn(&[4, 2], 10.0, 5.0, &mut rng);

    let first_rows = |mates: &Tensor, ps: &ParamSet| {
        let batch = Tensor::concat_rows(&[&base, mates]);
        let mut g = Graph::new();
        let x = g.input(batch);
        let y = bn.forward(&mut g, ps, x);
        g.value(y).as_slice()[..8].to_vec()
    };
    let with_a = first_rows(&other_a, &ps);
    let with_b = first_rows(&other_b, &ps);
    let diff: f32 = with_a.iter().zip(&with_b).map(|(x, y)| (x - y).abs()).sum();
    assert!(diff > 0.5, "batch statistics must leak batch composition (diff {diff})");
}

#[test]
fn rms_blocks_do_not_depend_on_batch_composition() {
    // The contrast: RMSNorm is row-wise, so the same sample embeds
    // identically regardless of batch mates.
    let mut rng = StdRng::seed_from_u64(3);
    let mut ps = ParamSet::new();
    let block = ResidualBlock::with_norm(&mut ps, "b", 4, Activation::Selu, 0.0, NormKind::Rms, &mut rng);
    let base = Tensor::randn(&[2, 4], 0.0, 1.0, &mut rng);
    let mates_a = Tensor::randn(&[6, 4], 0.0, 1.0, &mut rng);
    let mates_b = Tensor::randn(&[6, 4], 9.0, 4.0, &mut rng);

    let first_rows = |mates: &Tensor| {
        let batch = Tensor::concat_rows(&[&base, mates]);
        let mut g = Graph::new();
        let mut ctx = ForwardCtx::eval();
        let x = g.input(batch);
        let y = block.forward(&mut g, &ps, &mut ctx, x);
        g.value(y).as_slice()[..8].to_vec()
    };
    assert_eq!(first_rows(&mates_a), first_rows(&mates_b));
}

#[test]
fn heads_train_with_either_norm() {
    // Both norm kinds must produce trainable heads (gradients flow, loss
    // falls on a fixed batch).
    for norm in [NormKind::Rms, NormKind::Batch] {
        let mut rng = StdRng::seed_from_u64(4);
        let mut ps = ParamSet::new();
        let head = OutputHead::with_norm(&mut ps, "h", 4, 16, 1, 2, 0.0, norm, &mut rng);
        let x = Tensor::randn(&[16, 4], 0.0, 1.0, &mut rng);
        let target = Tensor::randn(&[16, 1], 0.0, 1.0, &mut rng);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..60 {
            ps.zero_grads();
            let mut g = Graph::new();
            let input = g.input(x.clone());
            let mut ctx = ForwardCtx::train(0);
            let y = head.forward(&mut g, &ps, &mut ctx, input);
            let loss = g.mse_loss(y, &target, None);
            last = g.value(loss).item();
            first.get_or_insert(last);
            g.backward(loss);
            ps.absorb_grads(&g, 1.0);
            // Step small enough that plain SGD converges for any init draw;
            // larger steps can oscillate through the BatchNorm head.
            for (v, grad) in ps.pairs_mut() {
                v.add_scaled_inplace(grad, -0.02);
            }
        }
        assert!(
            last < first.unwrap() * 0.6,
            "{norm:?}: loss should fall, {:?} -> {last}",
            first
        );
    }
}
