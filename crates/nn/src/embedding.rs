//! Learnable embedding tables (atomic-species embeddings).

use std::sync::Arc;

use matsciml_autograd::{Graph, Var};
use matsciml_tensor::Tensor;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::params::{ParamId, ParamSet};

/// A `[vocab, dim]` lookup table. Row `i` is the embedding of token `i`
/// (for the toolkit: atomic species index).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Embedding {
    /// The table parameter.
    pub table: ParamId,
    /// Number of rows (distinct tokens).
    pub vocab: usize,
    /// Embedding width.
    pub dim: usize,
}

impl Embedding {
    /// Register a table with `N(0, 1/sqrt(dim))` entries.
    pub fn new<R: Rng + ?Sized>(
        ps: &mut ParamSet,
        name: &str,
        vocab: usize,
        dim: usize,
        rng: &mut R,
    ) -> Self {
        let std = 1.0 / (dim as f32).sqrt();
        let table = ps.register(
            format!("{name}.table"),
            Tensor::randn(&[vocab, dim], 0.0, std, rng),
        );
        Embedding { table, vocab, dim }
    }

    /// Look up a batch of tokens: returns `[tokens.len(), dim]`.
    /// Lowered to a differentiable row gather, so only the rows that were
    /// looked up receive gradient.
    pub fn forward(&self, g: &mut Graph, ps: &ParamSet, tokens: Arc<Vec<u32>>) -> Var {
        debug_assert!(
            tokens.iter().all(|&t| (t as usize) < self.vocab),
            "embedding token out of range"
        );
        let table = ps.leaf(g, self.table);
        g.gather_rows(table, tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lookup_returns_table_rows() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut ps = ParamSet::new();
        let emb = Embedding::new(&mut ps, "atom", 10, 4, &mut rng);
        let mut g = Graph::new();
        let out = emb.forward(&mut g, &ps, Arc::new(vec![3, 3, 7]));
        let v = g.value(out);
        assert_eq!(v.shape(), &[3, 4]);
        assert_eq!(v.row(0), v.row(1));
        assert_eq!(v.row(0), ps.value(emb.table).row(3));
        assert_eq!(v.row(2), ps.value(emb.table).row(7));
    }

    #[test]
    fn only_looked_up_rows_receive_gradient() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut ps = ParamSet::new();
        let emb = Embedding::new(&mut ps, "atom", 5, 2, &mut rng);
        let mut g = Graph::new();
        let out = emb.forward(&mut g, &ps, Arc::new(vec![1, 1, 4]));
        let loss = g.sum_all(out);
        g.backward(loss);
        ps.absorb_grads(&g, 1.0);
        let grad = ps.grad(emb.table);
        assert_eq!(grad.row(0), &[0.0, 0.0]);
        assert_eq!(grad.row(1), &[2.0, 2.0], "row 1 looked up twice");
        assert_eq!(grad.row(4), &[1.0, 1.0]);
    }
}
