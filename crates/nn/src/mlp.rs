//! Multilayer perceptrons and the paper's residual output-head blocks.

use matsciml_autograd::{Graph, Var};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::layers::{Activation, BatchNorm, ForwardCtx, Linear, NormKind, RmsNorm};
use crate::params::ParamSet;

/// A plain MLP: a chain of [`Linear`] layers with an activation between
/// them (none after the last). Used for the E(n)-GNN's φ functions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
    /// Apply the activation after the final layer too (φ_e in the E(n)-GNN
    /// ends with a nonlinearity; regression heads must not).
    activate_last: bool,
}

impl Mlp {
    /// Build an MLP through the given widths, e.g. `[in, hidden, out]`.
    pub fn new<R: Rng + ?Sized>(
        ps: &mut ParamSet,
        name: &str,
        widths: &[usize],
        activation: Activation,
        activate_last: bool,
        rng: &mut R,
    ) -> Self {
        assert!(widths.len() >= 2, "an MLP needs at least input and output widths");
        let layers = widths
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(ps, &format!("{name}.{i}"), w[0], w[1], rng))
            .collect();
        Mlp {
            layers,
            activation,
            activate_last,
        }
    }

    /// Input feature width.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim
    }

    /// Output feature width.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim
    }

    /// Forward through all layers. Each `Linear → activation` pair is
    /// emitted as one fused dense node (see [`Linear::forward_act`]), so a
    /// φ-MLP's tape is one node per layer instead of three.
    pub fn forward(&self, g: &mut Graph, ps: &ParamSet, x: Var) -> Var {
        let last = self.layers.len() - 1;
        let mut h = x;
        for (i, layer) in self.layers.iter().enumerate() {
            let act = if i < last || self.activate_last {
                self.activation
            } else {
                Activation::Identity
            };
            h = layer.forward_act(g, ps, h, act);
        }
        h
    }
}

/// One output-head block from the paper's Appendix A:
/// `Linear → activation → RMSNorm → Dropout`, added to its input
/// (residual). Width-preserving.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResidualBlock {
    linear: Linear,
    norm: BlockNorm,
    activation: Activation,
    dropout_p: f32,
}

/// The block's normalization layer (paper Appendix A compares the two).
#[derive(Debug, Clone, Serialize, Deserialize)]
enum BlockNorm {
    Rms(RmsNorm),
    Batch(BatchNorm),
}

impl BlockNorm {
    fn forward(&self, g: &mut Graph, ps: &ParamSet, x: Var) -> Var {
        match self {
            BlockNorm::Rms(n) => n.forward(g, ps, x),
            BlockNorm::Batch(n) => n.forward(g, ps, x),
        }
    }
}

impl ResidualBlock {
    /// Register a width-`dim` residual block with RMSNorm (paper default).
    pub fn new<R: Rng + ?Sized>(
        ps: &mut ParamSet,
        name: &str,
        dim: usize,
        activation: Activation,
        dropout_p: f32,
        rng: &mut R,
    ) -> Self {
        Self::with_norm(ps, name, dim, activation, dropout_p, NormKind::Rms, rng)
    }

    /// Register a block with an explicit normalization choice.
    pub fn with_norm<R: Rng + ?Sized>(
        ps: &mut ParamSet,
        name: &str,
        dim: usize,
        activation: Activation,
        dropout_p: f32,
        norm: NormKind,
        rng: &mut R,
    ) -> Self {
        // Registration order (linear before norm) is part of the
        // checkpoint layout — do not reorder.
        let linear = Linear::new(ps, &format!("{name}.lin"), dim, dim, rng);
        let norm = match norm {
            NormKind::Rms => BlockNorm::Rms(RmsNorm::new(ps, &format!("{name}.norm"), dim)),
            NormKind::Batch => BlockNorm::Batch(BatchNorm::new(ps, &format!("{name}.norm"), dim)),
        };
        ResidualBlock {
            linear,
            norm,
            activation,
            dropout_p,
        }
    }

    /// `x + Dropout(Norm(act(Linear(x))))`.
    pub fn forward(&self, g: &mut Graph, ps: &ParamSet, ctx: &mut ForwardCtx, x: Var) -> Var {
        let h = self.linear.forward_act(g, ps, x, self.activation);
        let h = self.norm.forward(g, ps, h);
        let h = g.dropout(h, self.dropout_p, ctx.training, &mut ctx.rng);
        g.add(x, h)
    }
}

/// A task output head: an input projection, a stack of [`ResidualBlock`]s,
/// and a final linear map to the target width.
///
/// Paper defaults (Appendix A): hidden 256, SELU, RMSNorm, dropout 0.2;
/// three blocks for single-task heads, six for the multi-task setting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OutputHead {
    input_proj: Option<Linear>,
    blocks: Vec<ResidualBlock>,
    output: Linear,
}

impl OutputHead {
    /// Register a head mapping `in_dim -> out_dim` through `n_blocks`
    /// residual blocks of width `hidden`.
    #[allow(clippy::too_many_arguments)]
    pub fn new<R: Rng + ?Sized>(
        ps: &mut ParamSet,
        name: &str,
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        n_blocks: usize,
        dropout_p: f32,
        rng: &mut R,
    ) -> Self {
        Self::with_norm(
            ps, name, in_dim, hidden, out_dim, n_blocks, dropout_p, NormKind::Rms, rng,
        )
    }

    /// Register a head with an explicit block-normalization choice
    /// (paper Appendix A norm comparison).
    #[allow(clippy::too_many_arguments)]
    pub fn with_norm<R: Rng + ?Sized>(
        ps: &mut ParamSet,
        name: &str,
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        n_blocks: usize,
        dropout_p: f32,
        norm: NormKind,
        rng: &mut R,
    ) -> Self {
        let input_proj = (in_dim != hidden)
            .then(|| Linear::new(ps, &format!("{name}.proj"), in_dim, hidden, rng));
        let blocks = (0..n_blocks)
            .map(|i| {
                ResidualBlock::with_norm(
                    ps,
                    &format!("{name}.block{i}"),
                    hidden,
                    Activation::Selu,
                    dropout_p,
                    norm,
                    rng,
                )
            })
            .collect();
        let output = Linear::new(ps, &format!("{name}.out"), hidden, out_dim, rng);
        // Zero-init the final projection (residual-branch convention): the
        // head starts as the zero function, so untrained logits don't
        // inherit the scale of size-extensive sum-pooled embeddings and
        // classification CE starts at ln(classes).
        ps.value_mut(output.w).fill_inplace(0.0);
        OutputHead {
            input_proj,
            blocks,
            output,
        }
    }

    /// Forward `[batch, in_dim] -> [batch, out_dim]`.
    pub fn forward(&self, g: &mut Graph, ps: &ParamSet, ctx: &mut ForwardCtx, x: Var) -> Var {
        let mut h = match &self.input_proj {
            Some(proj) => proj.forward(g, ps, x),
            None => x,
        };
        for block in &self.blocks {
            h = block.forward(g, ps, ctx, h);
        }
        self.output.forward(g, ps, h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matsciml_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mlp_shapes_flow_through_widths() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ps = ParamSet::new();
        let mlp = Mlp::new(&mut ps, "m", &[6, 16, 3], Activation::Silu, false, &mut rng);
        assert_eq!(mlp.in_dim(), 6);
        assert_eq!(mlp.out_dim(), 3);
        let mut g = Graph::new();
        let x = g.input(Tensor::randn(&[5, 6], 0.0, 1.0, &mut rng));
        let y = mlp.forward(&mut g, &ps, x);
        assert_eq!(g.value(y).shape(), &[5, 3]);
    }

    #[test]
    fn mlp_without_last_activation_can_be_negative() {
        // A SiLU-activated last layer could never output values < -0.28.
        let mut rng = StdRng::seed_from_u64(2);
        let mut ps = ParamSet::new();
        let mlp = Mlp::new(&mut ps, "m", &[4, 8, 1], Activation::Silu, false, &mut rng);
        let mut g = Graph::new();
        let x = g.input(Tensor::randn(&[64, 4], 0.0, 2.0, &mut rng));
        let y = mlp.forward(&mut g, &ps, x);
        assert!(g.value(y).min() < -0.3 || g.value(y).max() > 0.3);
    }

    #[test]
    fn fused_emission_shrinks_tape_and_matches_unfused() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut ps = ParamSet::new();
        let mlp = Mlp::new(&mut ps, "m", &[6, 16, 16, 3], Activation::Silu, false, &mut rng);
        let input = Tensor::randn(&[10, 6], 0.0, 1.0, &mut rng);

        let run = |ps: &ParamSet| {
            let mut g = Graph::new();
            let x = g.input(input.clone());
            let y = mlp.forward(&mut g, ps, x);
            (g.len(), g.value(y).clone())
        };

        assert!(crate::layers::fused_linear(), "fused emission is the default");
        let (fused_len, fused_out) = run(&ps);
        crate::layers::set_fused_linear(false);
        let (plain_len, plain_out) = run(&ps);
        crate::layers::set_fused_linear(true);

        // 3 fused layers + input + 6 param leaves vs matmul/add_row/act
        // triples (last layer has no activation).
        assert!(
            fused_len + 5 <= plain_len,
            "fused tape ({fused_len}) should be well short of unfused ({plain_len})"
        );
        assert_eq!(fused_out, plain_out, "the two emissions must agree bit for bit");
    }

    #[test]
    fn residual_block_is_identity_plus_update() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut ps = ParamSet::new();
        let block = ResidualBlock::new(&mut ps, "b", 8, Activation::Selu, 0.0, &mut rng);
        // Zero the linear weight: then act(0)=0 (SELU), norm(0)=0, so the
        // block must be the identity.
        ps.value_mut(block.linear.w).fill_inplace(0.0);
        let mut g = Graph::new();
        let input = Tensor::randn(&[3, 8], 0.0, 1.0, &mut rng);
        let x = g.input(input.clone());
        let mut ctx = ForwardCtx::eval();
        let y = block.forward(&mut g, &ps, &mut ctx, x);
        for (a, b) in g.value(y).as_slice().iter().zip(input.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn output_head_projects_and_maps() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut ps = ParamSet::new();
        let head = OutputHead::new(&mut ps, "h", 32, 64, 1, 3, 0.2, &mut rng);
        let mut g = Graph::new();
        let x = g.input(Tensor::randn(&[7, 32], 0.0, 1.0, &mut rng));
        let mut ctx = ForwardCtx::eval();
        let y = head.forward(&mut g, &ps, &mut ctx, x);
        assert_eq!(g.value(y).shape(), &[7, 1]);
    }

    #[test]
    fn dropout_changes_training_forward_but_not_eval() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut ps = ParamSet::new();
        let head = OutputHead::new(&mut ps, "h", 8, 8, 2, 2, 0.5, &mut rng);
        // The final projection is zero-initialized (output would be
        // identically zero); give it weight so dropout noise is visible.
        ps.value_mut(head.output.w).fill_inplace(0.3);
        let input = Tensor::randn(&[4, 8], 0.0, 1.0, &mut rng);

        let run = |ctx: &mut ForwardCtx, ps: &ParamSet| {
            let mut g = Graph::new();
            let x = g.input(input.clone());
            let y = head.forward(&mut g, ps, ctx, x);
            g.value(y).clone()
        };

        let eval1 = run(&mut ForwardCtx::eval(), &ps);
        let eval2 = run(&mut ForwardCtx::eval(), &ps);
        assert_eq!(eval1, eval2, "eval must be deterministic");

        let train1 = run(&mut ForwardCtx::train(10), &ps);
        let train2 = run(&mut ForwardCtx::train(11), &ps);
        assert_ne!(train1, train2, "different dropout seeds must differ");
    }

    #[test]
    fn whole_head_trains_toward_target() {
        // Smoke test that gradients flow end to end: a few SGD steps must
        // reduce the loss on a fixed batch.
        let mut rng = StdRng::seed_from_u64(6);
        let mut ps = ParamSet::new();
        let head = OutputHead::new(&mut ps, "h", 4, 16, 1, 2, 0.0, &mut rng);
        let x = Tensor::randn(&[16, 4], 0.0, 1.0, &mut rng);
        let target = Tensor::randn(&[16, 1], 0.0, 1.0, &mut rng);

        let loss_of = |ps: &ParamSet| {
            let mut g = Graph::new();
            let input = g.input(x.clone());
            let mut ctx = ForwardCtx::eval();
            let y = head.forward(&mut g, ps, &mut ctx, input);
            let loss = g.mse_loss(y, &target, None);
            (g.value(loss).item(), g, loss)
        };

        let (initial, _, _) = loss_of(&ps);
        for _ in 0..50 {
            ps.zero_grads();
            let (_, mut g, loss) = loss_of(&ps);
            g.backward(loss);
            ps.absorb_grads(&g, 1.0);
            let lr = 0.05;
            for (v, grad) in ps.pairs_mut() {
                v.add_scaled_inplace(grad, -lr);
            }
        }
        let (fin, _, _) = loss_of(&ps);
        assert!(
            fin < initial * 0.5,
            "loss should halve under SGD: {initial} -> {fin}"
        );
    }
}
