//! Primitive layers: [`Linear`], [`RmsNorm`], activations, and the
//! per-forward context.

use std::sync::atomic::{AtomicBool, Ordering};

use matsciml_autograd::{Graph, Var};
use matsciml_tensor::{Act, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::params::{ParamId, ParamSet};

/// Process-wide switch for fused dense emission (default on). When set,
/// [`Linear::forward_act`] records one fused `Linear` tape node instead of
/// the `Matmul → AddRow → activation` triple. The two paths are bit-exact;
/// the switch exists so regression tests and benchmarks can pin the seed
/// (unfused) path.
static FUSED_LINEAR: AtomicBool = AtomicBool::new(true);

/// Enable or disable fused dense emission process-wide.
pub fn set_fused_linear(enabled: bool) {
    FUSED_LINEAR.store(enabled, Ordering::Relaxed);
}

/// Whether [`Linear::forward_act`] currently emits fused tape nodes.
pub fn fused_linear() -> bool {
    FUSED_LINEAR.load(Ordering::Relaxed)
}

/// Process-wide switch for the fused edge pipeline (default on). When
/// set, the message-passing encoders lower edge assembly and aggregation
/// onto the fused `edge_rel` / `edge_concat` / `weighted_scatter` tape
/// ops instead of the generic gather/sub/mul/concat/scatter composition.
/// The two paths are bit-exact; the switch exists so regression tests and
/// benchmarks can pin the generic (seed) path.
static FUSED_EDGES: AtomicBool = AtomicBool::new(true);

/// Enable or disable the fused edge pipeline process-wide.
pub fn set_fused_edges(enabled: bool) {
    FUSED_EDGES.store(enabled, Ordering::Relaxed);
}

/// Whether message-passing encoders currently emit fused edge tape nodes.
pub fn fused_edges() -> bool {
    FUSED_EDGES.load(Ordering::Relaxed)
}

/// Per-forward-pass context: training/eval mode and the RNG that feeds
/// stochastic layers (dropout). One per rank per step; seeding it from
/// `(global_seed, rank, step)` keeps DDP runs reproducible.
pub struct ForwardCtx {
    /// True during training (enables dropout).
    pub training: bool,
    /// RNG for stochastic layers.
    pub rng: StdRng,
}

impl ForwardCtx {
    /// Training-mode context with the given seed.
    pub fn train(seed: u64) -> Self {
        ForwardCtx {
            training: true,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Evaluation-mode context (dropout disabled; RNG still available).
    pub fn eval() -> Self {
        ForwardCtx {
            training: false,
            rng: StdRng::seed_from_u64(0),
        }
    }
}

/// Supported nonlinearities. The paper uses SiLU inside the E(n)-GNN
/// encoder and SELU inside output heads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// `x * sigmoid(x)`.
    Silu,
    /// Self-normalizing ELU (Klambauer et al. 2017).
    Selu,
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// No nonlinearity.
    Identity,
}

impl Activation {
    /// Apply the activation on the tape.
    pub fn apply(self, g: &mut Graph, x: Var) -> Var {
        match self {
            Activation::Silu => g.silu(x),
            Activation::Selu => g.selu(x),
            Activation::Relu => g.relu(x),
            Activation::Tanh => g.tanh(x),
            Activation::Sigmoid => g.sigmoid(x),
            Activation::Identity => x,
        }
    }

    /// The scalar kernel used when this activation runs inside a fused
    /// dense layer.
    pub fn kernel(self) -> Act {
        match self {
            Activation::Silu => Act::Silu,
            Activation::Selu => Act::Selu,
            Activation::Relu => Act::Relu,
            Activation::Tanh => Act::Tanh,
            Activation::Sigmoid => Act::Sigmoid,
            Activation::Identity => Act::Identity,
        }
    }
}

/// A fully-connected layer `y = x W + b`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    /// Weight parameter, shape `[in_dim, out_dim]`.
    pub w: ParamId,
    /// Optional bias parameter, shape `[out_dim]`.
    pub b: Option<ParamId>,
    /// Input feature width.
    pub in_dim: usize,
    /// Output feature width.
    pub out_dim: usize,
}

impl Linear {
    /// Register a Kaiming-initialized linear layer with bias.
    pub fn new<R: Rng + ?Sized>(
        ps: &mut ParamSet,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut R,
    ) -> Self {
        let w = ps.register(format!("{name}.w"), Tensor::kaiming(in_dim, out_dim, rng));
        let b = ps.register(format!("{name}.b"), Tensor::zeros(&[out_dim]));
        Linear {
            w,
            b: Some(b),
            in_dim,
            out_dim,
        }
    }

    /// Register a bias-free linear layer.
    pub fn new_no_bias<R: Rng + ?Sized>(
        ps: &mut ParamSet,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut R,
    ) -> Self {
        let w = ps.register(format!("{name}.w"), Tensor::kaiming(in_dim, out_dim, rng));
        Linear {
            w,
            b: None,
            in_dim,
            out_dim,
        }
    }

    /// `x [batch, in_dim] -> [batch, out_dim]`.
    pub fn forward(&self, g: &mut Graph, ps: &ParamSet, x: Var) -> Var {
        self.forward_act(g, ps, x, Activation::Identity)
    }

    /// `act(x W + b)` as one fused tape node when
    /// [fused emission](fused_linear) is on, or as the equivalent
    /// `Matmul → AddRow → activation` triple when it is off. The two
    /// emissions are bit-identical in values and gradients.
    pub fn forward_act(&self, g: &mut Graph, ps: &ParamSet, x: Var, act: Activation) -> Var {
        let w = ps.leaf(g, self.w);
        if fused_linear() {
            let bias = self.b.map(|b| ps.leaf(g, b));
            return g.linear(x, w, bias, act.kernel());
        }
        let y = g.matmul(x, w);
        let y = match self.b {
            Some(b) => {
                let bias = ps.leaf(g, b);
                g.add_row(y, bias)
            }
            None => y,
        };
        act.apply(g, y)
    }
}

/// Root-mean-square layer normalization with a learnable gain
/// (Zhang & Sennrich 2019). The paper chose RMSNorm over BatchNorm for its
/// robustness to the irregular batches of multi-task multi-dataset runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RmsNorm {
    /// Learnable per-feature gain, shape `[dim]`.
    pub gain: ParamId,
    /// Numerical-stability epsilon added to the mean square.
    pub eps: f32,
}

impl RmsNorm {
    /// Register an RMSNorm with unit gain.
    pub fn new(ps: &mut ParamSet, name: &str, dim: usize) -> Self {
        let gain = ps.register(format!("{name}.gain"), Tensor::ones(&[dim]));
        RmsNorm { gain, eps: 1e-6 }
    }

    /// Normalize rows and apply the gain.
    pub fn forward(&self, g: &mut Graph, ps: &ParamSet, x: Var) -> Var {
        let normed = g.rms_norm(x, self.eps);
        let gain = ps.leaf(g, self.gain);
        g.mul_row(normed, gain)
    }
}

/// Per-feature batch normalization with learnable gain, using batch
/// statistics (see `Graph::batch_norm`). Included for the paper's
/// Appendix A norm comparison: with the irregular batches of multi-task
/// multi-dataset training, batch statistics fluctuate with batch
/// composition — the failure mode that led the authors to RMSNorm.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchNorm {
    /// Learnable per-feature gain, shape `[dim]`.
    pub gain: ParamId,
    /// Learnable per-feature shift, shape `[dim]`.
    pub bias: ParamId,
    /// Numerical-stability epsilon.
    pub eps: f32,
}

impl BatchNorm {
    /// Register a BatchNorm with unit gain and zero shift.
    pub fn new(ps: &mut ParamSet, name: &str, dim: usize) -> Self {
        let gain = ps.register(format!("{name}.gain"), Tensor::ones(&[dim]));
        let bias = ps.register(format!("{name}.bias"), Tensor::zeros(&[dim]));
        BatchNorm { gain, bias, eps: 1e-5 }
    }

    /// Normalize columns by batch statistics and apply γ/β.
    pub fn forward(&self, g: &mut Graph, ps: &ParamSet, x: Var) -> Var {
        let normed = g.batch_norm(x, self.eps);
        let gain = ps.leaf(g, self.gain);
        let scaled = g.mul_row(normed, gain);
        let bias = ps.leaf(g, self.bias);
        g.add_row(scaled, bias)
    }
}

/// Which normalization a residual block applies (paper Appendix A
/// compares these in the multi-task setting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NormKind {
    /// RMSNorm — the paper's choice.
    Rms,
    /// BatchNorm with batch statistics — the unreliable-under-irregular-
    /// batches alternative.
    Batch,
}

#[cfg(test)]
mod tests {
    use super::*;
    use matsciml_autograd::gradcheck::assert_gradients_close;

    #[test]
    fn linear_forward_shape_and_bias() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ps = ParamSet::new();
        let lin = Linear::new(&mut ps, "l", 3, 5, &mut rng);
        // Set bias to a known value to verify it lands on every row.
        ps.value_mut(lin.b.unwrap()).fill_inplace(0.25);
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(&[4, 3]));
        let y = lin.forward(&mut g, &ps, x);
        assert_eq!(g.value(y).shape(), &[4, 5]);
        assert!(g.value(y).as_slice().iter().all(|&v| (v - 0.25).abs() < 1e-6));
    }

    #[test]
    fn linear_gradcheck_through_store() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ps = ParamSet::new();
        let lin = Linear::new(&mut ps, "l", 3, 2, &mut rng);
        let x = Tensor::randn(&[5, 3], 0.0, 1.0, &mut rng);
        let target = Tensor::randn(&[5, 2], 0.0, 1.0, &mut rng);
        let params = vec![ps.value(lin.w).clone(), ps.value(lin.b.unwrap()).clone()];
        assert_gradients_close(&params, 1e-2, 2e-2, move |g, p| {
            let input = g.input(x.clone());
            let w = g.param(0, p[0].clone());
            let b = g.param(1, p[1].clone());
            let y = g.matmul(input, w);
            let y = g.add_row(y, b);
            g.mse_loss(y, &target, None)
        });
    }

    #[test]
    fn rmsnorm_rows_have_unit_rms_with_unit_gain() {
        let mut ps = ParamSet::new();
        let norm = RmsNorm::new(&mut ps, "n", 8);
        let mut rng = StdRng::seed_from_u64(3);
        let mut g = Graph::new();
        let x = g.input(Tensor::randn(&[4, 8], 2.0, 3.0, &mut rng));
        let y = norm.forward(&mut g, &ps, x);
        let out = g.value(y);
        for r in 0..4 {
            let rms = (out.row(r).iter().map(|&v| (v as f64).powi(2)).sum::<f64>() / 8.0).sqrt();
            assert!((rms - 1.0).abs() < 1e-3, "row {r} rms = {rms}");
        }
    }

    #[test]
    fn activations_match_reference_points() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(&[3], vec![-1.0, 0.0, 1.0]).unwrap());
        let silu = Activation::Silu.apply(&mut g, x);
        let v = g.value(silu);
        assert!((v.at(0) + 0.26894).abs() < 1e-4);
        assert_eq!(v.at(1), 0.0);
        assert!((v.at(2) - 0.73106).abs() < 1e-4);

        let selu = Activation::Selu.apply(&mut g, x);
        let v = g.value(selu);
        // SELU(1) = 1.0507, SELU(-1) = 1.0507*1.6733*(e^-1 - 1) = -1.1113
        assert!((v.at(2) - 1.0507).abs() < 1e-3);
        assert!((v.at(0) + 1.1113).abs() < 1e-3);

        let ident = Activation::Identity.apply(&mut g, x);
        assert_eq!(ident, x, "identity must not add a node");
    }

    #[test]
    fn forward_ctx_modes() {
        let t = ForwardCtx::train(1);
        assert!(t.training);
        let e = ForwardCtx::eval();
        assert!(!e.training);
    }
}
