//! The parameter store shared by layers, tapes, and optimizers.

use matsciml_autograd::{Graph, Var};
use matsciml_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::bucket::{BucketLayout, GradBucket};

/// Handle to one parameter tensor in a [`ParamSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(pub usize);

/// A named collection of parameter tensors and their gradient accumulators.
///
/// This is the durable state of a model: layers register parameters at
/// construction time, each training step inserts them into a fresh tape,
/// and optimizers walk `values`/`grads` in lock-step. Serializable for
/// checkpointing pretrained weights between experiments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParamSet {
    values: Vec<Tensor>,
    grads: Vec<Tensor>,
    names: Vec<String>,
}

impl Default for ParamSet {
    fn default() -> Self {
        Self::new()
    }
}

impl ParamSet {
    /// An empty store.
    pub fn new() -> Self {
        ParamSet {
            values: Vec::new(),
            grads: Vec::new(),
            names: Vec::new(),
        }
    }

    /// Register a parameter, returning its handle. Names are diagnostic
    /// (duplicates allowed) and appear in checkpoint files.
    pub fn register(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let id = ParamId(self.values.len());
        self.grads.push(Tensor::zeros(value.shape()));
        self.values.push(value);
        self.names.push(name.into());
        id
    }

    /// Number of parameter tensors.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total scalar parameter count across all tensors.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Tensor::numel).sum()
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.values[id.0]
    }

    /// Mutable value (used by optimizers and weight surgery).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.values[id.0]
    }

    /// Accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.grads[id.0]
    }

    /// Diagnostic name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Iterate over `(value, grad)` pairs — the optimizer's view.
    pub fn pairs_mut(&mut self) -> impl Iterator<Item = (&mut Tensor, &Tensor)> {
        self.values.iter_mut().zip(self.grads.iter())
    }

    /// Insert parameter `id` into a tape as a tagged leaf.
    pub fn leaf(&self, g: &mut Graph, id: ParamId) -> Var {
        g.param(id.0, self.values[id.0].clone())
    }

    /// Zero every gradient accumulator in place.
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            g.fill_inplace(0.0);
        }
    }

    /// Accumulate the parameter gradients recorded on a finished tape,
    /// scaled by `scale` (DDP averaging passes `1/world_size`).
    pub fn absorb_grads(&mut self, graph: &Graph, scale: f32) {
        for (id, grad) in graph.param_grads() {
            self.grads[id].add_scaled_inplace(grad, scale);
        }
    }

    /// Accumulate one gradient tensor (by raw parameter index) scaled by
    /// `scale` — the DDP allreduce primitive.
    pub fn accumulate_grad(&mut self, index: usize, grad: &Tensor, scale: f32) {
        self.grads[index].add_scaled_inplace(grad, scale);
    }

    /// The flat-bucket span table for this store: span `i` covers parameter
    /// `i`'s scalars, packed contiguously in registration order.
    pub fn bucket_layout(&self) -> BucketLayout {
        let numels: Vec<usize> = self.grads.iter().map(Tensor::numel).collect();
        BucketLayout::from_numels(&numels)
    }

    /// Accumulate a reduced flat gradient bucket into the per-parameter
    /// accumulators, scaled: the final scatter of the bucketed allreduce.
    pub fn absorb_flat(&mut self, bucket: &GradBucket, scale: f32) {
        assert_eq!(
            bucket.layout().num_spans(),
            self.grads.len(),
            "absorb_flat: bucket layout does not match parameter count"
        );
        for (i, g) in self.grads.iter_mut().enumerate() {
            let src = bucket.span_slice(i);
            assert_eq!(src.len(), g.numel(), "absorb_flat: span {i} size mismatch");
            matsciml_tensor::kernels::axpy(g.as_mut_slice(), src, scale);
        }
    }

    /// Accumulate one reduced bucket of a partitioned layout into the
    /// per-parameter accumulators: span `i` of `bucket` lands in parameter
    /// `param_ids[i]`. Per-span this is the same `axpy` as
    /// [`ParamSet::absorb_flat`], so scattering every part of a
    /// [`crate::bucket::PartitionedLayout`] is bit-identical to one
    /// whole-layout `absorb_flat`.
    pub fn absorb_flat_part(&mut self, param_ids: &[usize], bucket: &GradBucket, scale: f32) {
        assert_eq!(
            bucket.layout().num_spans(),
            param_ids.len(),
            "absorb_flat_part: bucket layout does not match part span count"
        );
        for (i, &id) in param_ids.iter().enumerate() {
            let src = bucket.span_slice(i);
            let g = &mut self.grads[id];
            assert_eq!(
                src.len(),
                g.numel(),
                "absorb_flat_part: span {i} (param {id}) size mismatch"
            );
            matsciml_tensor::kernels::axpy(g.as_mut_slice(), src, scale);
        }
    }

    /// Add another store's gradients into this one, scaled. Both stores
    /// must have identical layouts (clones of the same model).
    pub fn absorb_grads_from(&mut self, other: &ParamSet, scale: f32) {
        assert_eq!(
            self.grads.len(),
            other.grads.len(),
            "absorb_grads_from: parameter layouts differ"
        );
        for (mine, theirs) in self.grads.iter_mut().zip(&other.grads) {
            mine.add_scaled_inplace(theirs, scale);
        }
    }

    /// Scale every gradient in place (fused slice kernel).
    pub fn scale_grads(&mut self, scale: f32) {
        for g in &mut self.grads {
            matsciml_tensor::kernels::scale(g.as_mut_slice(), scale);
        }
    }

    /// Global L2 norm over all gradients (f64 accumulation).
    pub fn grad_norm(&self) -> f32 {
        self.grads.iter().map(Tensor::sumsq).sum::<f64>().sqrt() as f32
    }

    /// Global L2 norm over all parameter values.
    pub fn value_norm(&self) -> f32 {
        self.values.iter().map(Tensor::sumsq).sum::<f64>().sqrt() as f32
    }

    /// Clip gradients to a maximum global norm; returns the pre-clip norm.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            self.scale_grads(max_norm / norm);
        }
        norm
    }

    /// Copy parameter values from another store with an identical layout
    /// (loading a pretrained encoder into a fresh model).
    pub fn copy_values_from(&mut self, other: &ParamSet) {
        assert_eq!(
            self.values.len(),
            other.values.len(),
            "copy_values_from: parameter layouts differ"
        );
        for (mine, theirs) in self.values.iter_mut().zip(&other.values) {
            assert_eq!(
                mine.shape(),
                theirs.shape(),
                "copy_values_from: shape mismatch"
            );
            *mine = theirs.clone();
        }
    }

    /// Copy a prefix of parameters from `other` (transferring a pretrained
    /// encoder into a model whose heads differ). `count` is the number of
    /// leading parameter tensors to copy.
    pub fn copy_prefix_from(&mut self, other: &ParamSet, count: usize) {
        assert!(count <= self.values.len() && count <= other.values.len());
        for i in 0..count {
            assert_eq!(
                self.values[i].shape(),
                other.values[i].shape(),
                "copy_prefix_from: shape mismatch at param {i} ({})",
                self.names[i]
            );
            self.values[i] = other.values[i].clone();
        }
    }

    /// True when every parameter and gradient is finite.
    pub fn all_finite(&self) -> bool {
        self.values.iter().all(Tensor::all_finite) && self.grads.iter().all(Tensor::all_finite)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_store() -> (ParamSet, ParamId, ParamId) {
        let mut ps = ParamSet::new();
        let a = ps.register("a", Tensor::from_vec(&[2], vec![1.0, 2.0]).unwrap());
        let b = ps.register("b", Tensor::from_vec(&[3], vec![3.0, 4.0, 5.0]).unwrap());
        (ps, a, b)
    }

    #[test]
    fn register_and_inspect() {
        let (ps, a, b) = simple_store();
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.num_scalars(), 5);
        assert_eq!(ps.name(a), "a");
        assert_eq!(ps.value(b).as_slice(), &[3.0, 4.0, 5.0]);
        assert_eq!(ps.grad(a).as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn absorb_grads_from_tape_scales() {
        let (mut ps, a, _) = simple_store();
        let mut g = Graph::new();
        let va = ps.leaf(&mut g, a);
        let doubled = g.scale(va, 2.0);
        let loss = g.sum_all(doubled);
        g.backward(loss);
        ps.absorb_grads(&g, 0.5);
        assert_eq!(ps.grad(a).as_slice(), &[1.0, 1.0]);
        // Absorbing again accumulates.
        ps.absorb_grads(&g, 0.5);
        assert_eq!(ps.grad(a).as_slice(), &[2.0, 2.0]);
        ps.zero_grads();
        assert_eq!(ps.grad(a).as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn clip_grad_norm_caps_global_norm() {
        let (mut ps, a, b) = simple_store();
        let mut g = Graph::new();
        let va = ps.leaf(&mut g, a);
        let vb = ps.leaf(&mut g, b);
        let sa = g.scale(va, 3.0);
        let sb = g.scale(vb, 4.0);
        let la = g.sum_all(sa);
        let lb = g.sum_all(sb);
        let loss = g.add(la, lb);
        g.backward(loss);
        ps.absorb_grads(&g, 1.0);
        let pre = ps.clip_grad_norm(1.0);
        assert!(pre > 1.0);
        assert!((ps.grad_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn copy_prefix_transfers_encoder_weights() {
        let (mut dst, _, _) = simple_store();
        let (mut src, sa, _) = simple_store();
        src.value_mut(sa).fill_inplace(9.0);
        dst.copy_prefix_from(&src, 1);
        assert_eq!(dst.value(ParamId(0)).as_slice(), &[9.0, 9.0]);
        assert_eq!(dst.value(ParamId(1)).as_slice(), &[3.0, 4.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "layouts differ")]
    fn absorb_from_mismatched_layout_panics() {
        let (mut ps, _, _) = simple_store();
        let other = ParamSet::new();
        ps.absorb_grads_from(&other, 1.0);
    }

    #[test]
    fn bucket_layout_matches_registration_order() {
        let (ps, _, _) = simple_store();
        let layout = ps.bucket_layout();
        assert_eq!(layout.num_spans(), 2);
        assert_eq!(layout.span(0), (0, 2));
        assert_eq!(layout.span(1), (2, 3));
        assert_eq!(layout.total_scalars(), ps.num_scalars());
    }

    #[test]
    fn absorb_flat_scatters_spans_into_grads() {
        let (mut ps, a, b) = simple_store();
        let mut bucket = GradBucket::zeros(ps.bucket_layout());
        bucket.copy_span(0, &[2.0, 4.0]);
        bucket.copy_span(1, &[6.0, 8.0, 10.0]);
        ps.absorb_flat(&bucket, 0.5);
        assert_eq!(ps.grad(a).as_slice(), &[1.0, 2.0]);
        assert_eq!(ps.grad(b).as_slice(), &[3.0, 4.0, 5.0]);
        // Accumulates on a second absorb rather than overwriting.
        ps.absorb_flat(&bucket, 0.5);
        assert_eq!(ps.grad(a).as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn checkpoint_roundtrip_via_serde() {
        let (ps, _, _) = simple_store();
        let json = serde_json::to_string(&ps).unwrap();
        let back: ParamSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.value(ParamId(1)).as_slice(), &[3.0, 4.0, 5.0]);
    }
}
