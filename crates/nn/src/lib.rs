//! Neural-network building blocks over the autograd tape.
//!
//! Parameters live in a [`ParamSet`] that outlives any single tape: each
//! training step inserts them into a fresh [`matsciml_autograd::Graph`] as
//! tagged leaves (an `Arc` clone, no copy), runs forward/backward, then
//! pulls gradients back with [`ParamSet::absorb_grads`]. Layers
//! ([`Linear`], [`Embedding`], [`Mlp`], [`ResidualBlock`], [`OutputHead`])
//! hold only [`ParamId`]s and hyperparameters, so they are plain `Clone +
//! Send + Sync` data and can be shared across simulated DDP ranks.

#![warn(missing_docs)]

pub mod bucket;
mod embedding;
mod layers;
mod mlp;
mod params;

pub use bucket::{BucketLayout, BucketPart, GradBucket, PartitionedLayout};
pub use embedding::Embedding;
pub use layers::{
    fused_edges, fused_linear, set_fused_edges, set_fused_linear, Activation, BatchNorm,
    ForwardCtx, Linear, NormKind, RmsNorm,
};
pub use mlp::{Mlp, OutputHead, ResidualBlock};
pub use params::{ParamId, ParamSet};
