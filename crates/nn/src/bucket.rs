//! Flat gradient buckets: the allreduce substrate for the DDP simulator.
//!
//! A [`BucketLayout`] maps every parameter tensor of a [`ParamSet`] into one
//! contiguous `f32` buffer via `(offset, len)` spans, in registration order.
//! A [`GradBucket`] is one such buffer. Reducing gradients over N ranks then
//! becomes flat vector adds over a handful of buckets instead of
//! `N × num_params` tensor-granularity operations — one loop, no per-tensor
//! dispatch, no `N × params` resident clones.
//!
//! The reduction schedule is fixed by the world size alone:
//!
//! * ranks are split into [`reduce_slots`]`(world)` contiguous groups
//!   ([`rank_range`]); each group folds its ranks **in rank order** into one
//!   slot bucket as soon as each rank's backward pass finishes (streaming —
//!   the rank's tape is dropped before the next rank runs);
//! * slot buckets are then combined by a fixed pairwise tree
//!   ([`tree_reduce_into_first`]).
//!
//! Because both the group fold order and the tree shape depend only on
//! `world_size`, the summation bracketing never depends on the thread
//! schedule: parallel and sequential execution produce bit-identical sums.
//!
//! Every bucket registers its buffer size with a global live/peak byte
//! counter ([`bucket_bytes_live`] / [`bucket_bytes_peak`]), which is how the
//! tests assert the memory bound: a world-512 DDP step keeps at most
//! `reduce_slots(512) = `[`MAX_REDUCE_SLOTS`] buckets resident —
//! O(threads × param-bytes), not O(world × param-bytes).

use std::sync::atomic::{AtomicUsize, Ordering};

use matsciml_tensor::kernels;

use crate::params::ParamSet;

/// Upper bound on simultaneously resident reduction slots (and on useful
/// reduction threads). Matches one dual-socket node's DDP ranks in the
/// paper's setup.
pub const MAX_REDUCE_SLOTS: usize = 16;

static LIVE_BYTES: AtomicUsize = AtomicUsize::new(0);
static PEAK_BYTES: AtomicUsize = AtomicUsize::new(0);

/// Bytes of gradient-bucket buffers currently alive in this process.
pub fn bucket_bytes_live() -> usize {
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// High-water mark of [`bucket_bytes_live`] since process start (or the
/// last [`reset_bucket_peak`]).
pub fn bucket_bytes_peak() -> usize {
    PEAK_BYTES.load(Ordering::Relaxed)
}

/// Reset the peak to the current live count (call before the region whose
/// memory bound you want to measure).
pub fn reset_bucket_peak() {
    PEAK_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Number of reduction slots (resident partial-sum buckets) for a world
/// size: `min(world_size, MAX_REDUCE_SLOTS)`, at least 1.
pub fn reduce_slots(world_size: usize) -> usize {
    world_size.clamp(1, MAX_REDUCE_SLOTS)
}

/// The contiguous rank range owned by reduction slot `slot` (of `slots`):
/// the first `world_size % slots` slots take one extra rank. Ranges
/// partition `0..world_size` and depend only on the two sizes.
pub fn rank_range(world_size: usize, slots: usize, slot: usize) -> std::ops::Range<usize> {
    assert!(slot < slots && slots <= world_size.max(1));
    let base = world_size / slots;
    let rem = world_size % slots;
    let start = slot * base + slot.min(rem);
    start..start + base + usize::from(slot < rem)
}

/// The span table mapping parameter tensors into one flat buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketLayout {
    /// `(offset, len)` per parameter, in registration order.
    spans: Vec<(usize, usize)>,
    total: usize,
}

impl BucketLayout {
    /// Build a layout from per-parameter element counts, packed contiguously
    /// in order.
    pub fn from_numels(numels: &[usize]) -> Self {
        let mut spans = Vec::with_capacity(numels.len());
        let mut offset = 0;
        for &n in numels {
            spans.push((offset, n));
            offset += n;
        }
        BucketLayout {
            spans,
            total: offset,
        }
    }

    /// Layout of a parameter store's gradients (identical to its values).
    pub fn of(params: &ParamSet) -> Self {
        params.bucket_layout()
    }

    /// Number of parameter spans.
    pub fn num_spans(&self) -> usize {
        self.spans.len()
    }

    /// `(offset, len)` of span `i`.
    pub fn span(&self, i: usize) -> (usize, usize) {
        self.spans[i]
    }

    /// Total scalar count across all spans.
    pub fn total_scalars(&self) -> usize {
        self.total
    }

    /// Buffer size in bytes — the wire size of one gradient allreduce.
    pub fn bytes(&self) -> usize {
        self.total * std::mem::size_of::<f32>()
    }
}

/// One size-capped bucket of a [`PartitionedLayout`]: a [`BucketLayout`]
/// over a subset of the parameters, plus the global parameter index each
/// local span maps back to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketPart {
    layout: BucketLayout,
    param_ids: Vec<usize>,
}

impl BucketPart {
    /// The span table of this part's flat buffer (span `i` ↔
    /// `param_ids()[i]`).
    pub fn layout(&self) -> &BucketLayout {
        &self.layout
    }

    /// Global parameter index of each local span, in part order.
    pub fn param_ids(&self) -> &[usize] {
        &self.param_ids
    }
}

/// A [`BucketLayout`] split into K size-capped buckets ordered by
/// **reverse parameter-touch order** — the allreduce substrate for
/// backward↔comm overlap.
///
/// During a reverse sweep, gradients finalize in reverse touch order:
/// the last-touched parameter is ready first. Packing buckets in that
/// order means bucket 0 fills while most of backward is still ahead, so a
/// comm worker can reduce it *under* the remaining backward work. Every
/// bucket covers a contiguous run of the reverse-touch sequence capped at
/// `cap_bytes` (a parameter larger than the cap gets a bucket of its
/// own); parameters absent from the touch order (never inserted into the
/// tape) are appended to the final bucket — their spans stay zero, which
/// reduces and scatters to exactly the no-op the single-bucket path
/// performs for them.
///
/// Splitting changes no arithmetic: per-span copy/add folds, the pairwise
/// slot tree, the `1/world` scale, and the scatter are all elementwise
/// within a span, so K per-part reductions are bit-identical to one
/// whole-layout reduction — only *when* each span reduces moves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionedLayout {
    parts: Vec<BucketPart>,
    /// Per global parameter: `(part, span-within-part)`.
    lookup: Vec<(u32, u32)>,
}

impl PartitionedLayout {
    /// Partition `numels` (per-parameter element counts, indexed by global
    /// parameter id) into size-capped buckets along the reverse of
    /// `touch_order` (parameter ids in forward-touch order; duplicates
    /// keep their first occurrence, unknown ids panic).
    pub fn by_reverse_touch(numels: &[usize], touch_order: &[usize], cap_bytes: usize) -> Self {
        let cap = cap_bytes.max(1);
        let mut seen = vec![false; numels.len()];
        let mut order: Vec<usize> = Vec::with_capacity(numels.len());
        for &id in touch_order.iter().rev() {
            assert!(id < numels.len(), "touch_order id {id} out of range");
            if !seen[id] {
                seen[id] = true;
                order.push(id);
            }
        }
        // Reversed iteration keeps the *last* duplicate occurrence, but a
        // leaf finalizes once per occurrence and spans are id-keyed, so
        // any single placement is correct; reverse-of-first-touch and
        // last-touch only differ for re-inserted parameters.
        let untouched: Vec<usize> = (0..numels.len()).filter(|&id| !seen[id]).collect();

        let mut parts: Vec<Vec<usize>> = Vec::new();
        let mut cur: Vec<usize> = Vec::new();
        let mut cur_bytes = 0usize;
        for id in order {
            let bytes = numels[id] * std::mem::size_of::<f32>();
            if !cur.is_empty() && cur_bytes + bytes > cap {
                parts.push(std::mem::take(&mut cur));
                cur_bytes = 0;
            }
            cur.push(id);
            cur_bytes += bytes;
        }
        if !cur.is_empty() {
            parts.push(cur);
        }
        // Untouched parameters ride in the final bucket: they gate nothing
        // (no leaf ever fires for them) and scatter only zeros.
        match parts.last_mut() {
            Some(last) => last.extend(untouched),
            None if !untouched.is_empty() => parts.push(untouched),
            None => {}
        }

        let mut lookup = vec![(u32::MAX, u32::MAX); numels.len()];
        let parts: Vec<BucketPart> = parts
            .into_iter()
            .enumerate()
            .map(|(p, ids)| {
                let sizes: Vec<usize> = ids.iter().map(|&id| numels[id]).collect();
                for (s, &id) in ids.iter().enumerate() {
                    lookup[id] = (p as u32, s as u32);
                }
                BucketPart {
                    layout: BucketLayout::from_numels(&sizes),
                    param_ids: ids,
                }
            })
            .collect();
        PartitionedLayout { parts, lookup }
    }

    /// Number of buckets.
    pub fn num_parts(&self) -> usize {
        self.parts.len()
    }

    /// Bucket `p`.
    pub fn part(&self, p: usize) -> &BucketPart {
        &self.parts[p]
    }

    /// Iterate the buckets in firing order (bucket 0 finalizes first).
    pub fn parts(&self) -> impl Iterator<Item = &BucketPart> {
        self.parts.iter()
    }

    /// `(part, span-within-part)` of global parameter `id`.
    pub fn locate(&self, id: usize) -> (usize, usize) {
        let (p, s) = self.lookup[id];
        assert!(p != u32::MAX, "parameter {id} not covered by the partition");
        (p as usize, s as usize)
    }

    /// Total scalar count across every bucket (equals the unsplit
    /// layout's).
    pub fn total_scalars(&self) -> usize {
        self.parts.iter().map(|p| p.layout.total_scalars()).sum()
    }
}

/// One flat gradient buffer described by a [`BucketLayout`].
#[derive(Debug)]
pub struct GradBucket {
    layout: BucketLayout,
    data: Vec<f32>,
}

impl GradBucket {
    /// A zeroed bucket for `layout`. Registers its bytes with the global
    /// live/peak counters.
    pub fn zeros(layout: BucketLayout) -> Self {
        let bytes = layout.bytes();
        let live = LIVE_BYTES.fetch_add(bytes, Ordering::Relaxed) + bytes;
        PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
        GradBucket {
            data: vec![0.0; layout.total_scalars()],
            layout,
        }
    }

    /// The span table.
    pub fn layout(&self) -> &BucketLayout {
        &self.layout
    }

    /// The whole flat buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// The slice of span `i` (the scatter side of the round trip).
    pub fn span_slice(&self, i: usize) -> &[f32] {
        let (off, len) = self.layout.span(i);
        &self.data[off..off + len]
    }

    /// Overwrite span `i` from a flat slice (the gather side).
    pub fn copy_span(&mut self, i: usize, src: &[f32]) {
        let (off, len) = self.layout.span(i);
        assert_eq!(src.len(), len, "copy_span: span {i} length mismatch");
        self.data[off..off + len].copy_from_slice(src);
    }

    /// `span_i += src * s` — how a rank's per-parameter gradients stream
    /// into a slot bucket.
    pub fn add_span(&mut self, i: usize, src: &[f32], s: f32) {
        let (off, len) = self.layout.span(i);
        assert_eq!(src.len(), len, "add_span: span {i} length mismatch");
        if s == 1.0 {
            kernels::vadd(&mut self.data[off..off + len], src);
        } else {
            kernels::axpy(&mut self.data[off..off + len], src, s);
        }
    }

    /// `self += other` over the whole flat buffer — the tree-reduce step.
    pub fn add(&mut self, other: &GradBucket) {
        assert_eq!(
            self.layout, other.layout,
            "GradBucket::add: layouts differ"
        );
        kernels::vadd(&mut self.data, &other.data);
    }

    /// Scale the whole buffer (the `1/world_size` averaging step).
    pub fn scale(&mut self, s: f32) {
        kernels::scale(&mut self.data, s);
    }

    /// Sum of squares over the buffer (f64 accumulation).
    pub fn sumsq(&self) -> f64 {
        kernels::sumsq(&self.data)
    }

    /// Zero the buffer in place for reuse.
    pub fn clear(&mut self) {
        kernels::fill(&mut self.data, 0.0);
    }
}

impl Drop for GradBucket {
    fn drop(&mut self) {
        LIVE_BYTES.fetch_sub(self.layout.bytes(), Ordering::Relaxed);
    }
}

/// Pairwise tree reduction into `slots[0]`: stride-doubling over the slot
/// array (0+=1, 2+=3, …; then 0+=2, 4+=6, …). The summation order is a
/// function of `slots.len()` alone, so any two runs with the same world
/// size — parallel or sequential — sum in the same bracketing.
pub fn tree_reduce_into_first(slots: &mut [GradBucket]) {
    let n = slots.len();
    let mut stride = 1;
    while stride < n {
        let mut i = 0;
        while i + stride < n {
            let (head, tail) = slots.split_at_mut(i + stride);
            head[i].add(&tail[0]);
            i += 2 * stride;
        }
        stride *= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout3() -> BucketLayout {
        BucketLayout::from_numels(&[2, 3, 1])
    }

    #[test]
    fn layout_packs_contiguously() {
        let l = layout3();
        assert_eq!(l.num_spans(), 3);
        assert_eq!(l.span(0), (0, 2));
        assert_eq!(l.span(1), (2, 3));
        assert_eq!(l.span(2), (5, 1));
        assert_eq!(l.total_scalars(), 6);
        assert_eq!(l.bytes(), 24);
    }

    #[test]
    fn spans_round_trip() {
        let mut b = GradBucket::zeros(layout3());
        b.copy_span(0, &[1.0, 2.0]);
        b.copy_span(1, &[3.0, 4.0, 5.0]);
        b.copy_span(2, &[6.0]);
        assert_eq!(b.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(b.span_slice(1), &[3.0, 4.0, 5.0]);
        b.add_span(1, &[1.0, 1.0, 1.0], 2.0);
        assert_eq!(b.span_slice(1), &[5.0, 6.0, 7.0]);
    }

    #[test]
    fn rank_ranges_partition_the_world() {
        for world in [1usize, 2, 4, 7, 16, 17, 512] {
            let slots = reduce_slots(world);
            assert!(slots <= MAX_REDUCE_SLOTS && slots >= 1);
            let mut next = 0;
            for slot in 0..slots {
                let r = rank_range(world, slots, slot);
                assert_eq!(r.start, next, "world {world} slot {slot}");
                assert!(!r.is_empty());
                next = r.end;
            }
            assert_eq!(next, world);
        }
    }

    #[test]
    fn world_one_gets_one_slot_owning_rank_zero() {
        assert_eq!(reduce_slots(1), 1);
        assert_eq!(rank_range(1, 1, 0), 0..1);
        // world=0 (empty sweep config) still yields one slot; its range is
        // empty rather than panicking.
        assert_eq!(reduce_slots(0), 1);
        assert_eq!(rank_range(0, 1, 0), 0..0);
    }

    #[test]
    fn world_below_slot_cap_gives_one_rank_per_slot() {
        for world in 1..MAX_REDUCE_SLOTS {
            let slots = reduce_slots(world);
            assert_eq!(slots, world, "small worlds get exactly one slot per rank");
            for slot in 0..slots {
                assert_eq!(rank_range(world, slots, slot), slot..slot + 1);
            }
        }
    }

    #[test]
    fn non_divisible_worlds_spread_the_remainder_over_leading_slots() {
        for world in [17usize, 19, 23, 31, 33, 100, 511, 513] {
            let slots = reduce_slots(world);
            assert_eq!(slots, MAX_REDUCE_SLOTS);
            let base = world / slots;
            let rem = world % slots;
            let mut covered = vec![false; world];
            let mut next = 0;
            for slot in 0..slots {
                let r = rank_range(world, slots, slot);
                let want = base + usize::from(slot < rem);
                assert_eq!(r.len(), want, "world {world} slot {slot}");
                assert_eq!(r.start, next, "ranges must be contiguous");
                for rank in r.clone() {
                    assert!(!covered[rank], "rank {rank} assigned twice");
                    covered[rank] = true;
                }
                next = r.end;
            }
            assert_eq!(next, world, "ranges must end at world");
            assert!(covered.iter().all(|&c| c), "every rank must be covered");
        }
    }

    #[test]
    fn partition_orders_buckets_by_reverse_touch() {
        // params: 0 (2 elems), 1 (3), 2 (1), 3 (4, untouched).
        // Touch order 2,0,1 → reverse touch 1,0,2. Cap of 20 bytes = 5
        // floats per bucket.
        let p = PartitionedLayout::by_reverse_touch(&[2, 3, 1, 4], &[2, 0, 1], 20);
        assert_eq!(p.num_parts(), 2);
        assert_eq!(p.part(0).param_ids(), &[1, 0]); // 3+2 floats fit
        assert_eq!(p.part(1).param_ids(), &[2, 3]); // 2 spills; 3 untouched rides last
        assert_eq!(p.locate(1), (0, 0));
        assert_eq!(p.locate(0), (0, 1));
        assert_eq!(p.locate(2), (1, 0));
        assert_eq!(p.locate(3), (1, 1));
        assert_eq!(p.total_scalars(), 10);
        assert_eq!(p.part(0).layout().span(1), (3, 2));
    }

    #[test]
    fn partition_covers_every_param_exactly_once_at_any_cap() {
        let numels = [5usize, 1, 7, 3, 2, 9, 4];
        let touch = [3usize, 5, 0, 5, 1, 6, 3]; // duplicates, params 2 & 4 untouched
        for cap in [1usize, 8, 24, 64, 1 << 20] {
            let p = PartitionedLayout::by_reverse_touch(&numels, &touch, cap);
            let mut seen = vec![0usize; numels.len()];
            for (pi, part) in p.parts().enumerate() {
                assert!(!part.param_ids().is_empty());
                for (s, &id) in part.param_ids().iter().enumerate() {
                    seen[id] += 1;
                    assert_eq!(p.locate(id), (pi, s));
                    assert_eq!(part.layout().span(s).1, numels[id]);
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "cap {cap}: cover exactly once");
            assert_eq!(p.total_scalars(), numels.iter().sum::<usize>());
        }
    }

    #[test]
    fn partition_with_giant_cap_is_a_single_bucket() {
        let p = PartitionedLayout::by_reverse_touch(&[2, 3], &[0, 1], usize::MAX);
        assert_eq!(p.num_parts(), 1);
        assert_eq!(p.part(0).param_ids(), &[1, 0]);
    }

    #[test]
    fn tree_reduce_sums_every_slot_once() {
        let l = BucketLayout::from_numels(&[4]);
        for n in 1..=9usize {
            let mut slots: Vec<GradBucket> = (0..n)
                .map(|s| {
                    let mut b = GradBucket::zeros(l.clone());
                    b.copy_span(0, &[(s + 1) as f32; 4]);
                    b
                })
                .collect();
            tree_reduce_into_first(&mut slots);
            let want = (n * (n + 1) / 2) as f32;
            assert_eq!(slots[0].as_slice(), &[want; 4], "n = {n}");
        }
    }

    #[test]
    fn byte_accounting_tracks_lifetimes() {
        let before = bucket_bytes_live();
        let l = BucketLayout::from_numels(&[256]);
        let a = GradBucket::zeros(l.clone());
        let b = GradBucket::zeros(l);
        assert_eq!(bucket_bytes_live(), before + 2 * 1024);
        assert!(bucket_bytes_peak() >= before + 2 * 1024);
        drop(a);
        drop(b);
        assert_eq!(bucket_bytes_live(), before);
    }
}
