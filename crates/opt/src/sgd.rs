//! Plain SGD with momentum — the non-adaptive baseline for the Adam
//! instability ablation.

use matsciml_nn::ParamSet;
use matsciml_tensor::Tensor;

/// Stochastic gradient descent with classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Initialize zero velocity matching the store's layout.
    pub fn new(params: &ParamSet, lr: f32, momentum: f32) -> Self {
        let velocity = (0..params.len())
            .map(|i| Tensor::zeros(params.value(matsciml_nn::ParamId(i)).shape()))
            .collect();
        Sgd {
            lr,
            momentum,
            velocity,
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Set the learning rate.
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Apply one update: `v ← μv + g; p ← p − lr·v`.
    pub fn step(&mut self, params: &mut ParamSet) {
        let (lr, mu) = (self.lr, self.momentum);
        for (i, (value, grad)) in params.pairs_mut().enumerate() {
            let v = self.velocity[i].as_mut_slice();
            let p = value.as_mut_slice();
            let g = grad.as_slice();
            for j in 0..p.len() {
                v[j] = mu * v[j] + g[j];
                p[j] -= lr * v[j];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matsciml_autograd::Graph;
    use matsciml_nn::ParamId;

    fn quadratic_step(ps: &mut ParamSet, target: &Tensor) -> f32 {
        ps.zero_grads();
        let mut g = Graph::new();
        let p = ps.leaf(&mut g, ParamId(0));
        let loss = g.mse_loss(p, target, None);
        let val = g.value(loss).item();
        g.backward(loss);
        ps.absorb_grads(&g, 1.0);
        val
    }

    #[test]
    fn converges_on_quadratic() {
        let mut ps = ParamSet::new();
        ps.register("p", Tensor::from_vec(&[3], vec![4.0, -2.0, 1.0]).unwrap());
        let target = Tensor::zeros(&[3]);
        let mut opt = Sgd::new(&ps, 0.1, 0.9);
        let first = quadratic_step(&mut ps, &target);
        opt.step(&mut ps);
        for _ in 0..200 {
            quadratic_step(&mut ps, &target);
            opt.step(&mut ps);
        }
        let last = quadratic_step(&mut ps, &target);
        assert!(last < first * 1e-4, "{first} -> {last}");
    }

    #[test]
    fn without_momentum_matches_hand_computed_update() {
        let mut ps = ParamSet::new();
        ps.register("p", Tensor::from_vec(&[1], vec![2.0]).unwrap());
        let target = Tensor::zeros(&[1]);
        let mut opt = Sgd::new(&ps, 0.25, 0.0);
        quadratic_step(&mut ps, &target); // grad = 2*(2-0) = 4
        opt.step(&mut ps);
        let v = ps.value(ParamId(0)).item();
        assert!((v - 1.0).abs() < 1e-6, "2 - 0.25*4 = 1, got {v}");
    }

    #[test]
    fn momentum_accelerates_along_persistent_gradient() {
        // With a constant gradient, two momentum steps move farther than
        // two plain steps.
        let run = |mu: f32| {
            let mut ps = ParamSet::new();
            ps.register("p", Tensor::from_vec(&[1], vec![0.0]).unwrap());
            let mut opt = Sgd::new(&ps, 0.1, mu);
            for _ in 0..2 {
                ps.zero_grads();
                let mut g = Graph::new();
                let p = ps.leaf(&mut g, ParamId(0));
                let lin = g.scale(p, 1.0);
                let loss = g.sum_all(lin); // d/dp = 1 always
                g.backward(loss);
                ps.absorb_grads(&g, 1.0);
                opt.step(&mut ps);
            }
            ps.value(ParamId(0)).item()
        };
        assert!(run(0.9) < run(0.0), "momentum should have moved farther downhill");
    }
}
