//! Optimizers, learning-rate schedules, and training-stability probes.
//!
//! Implements exactly the training machinery of the paper's Section 4.2:
//! AdamW (Loshchilov & Hutter 2019) with default momenta, the linear-warmup
//! plus exponential-decay schedule, learning-rate scaling with DDP world
//! size (Goyal et al. 2018), and an [`InstabilityProbe`] that captures the
//! gradient-norm / update-correlation diagnostics of Molybog et al.'s Adam
//! instability analysis, which the paper uses to explain its large-batch
//! loss spikes.

//! # Example
//!
//! ```
//! use matsciml_opt::{LrSchedule, WarmupExpDecay};
//!
//! // The paper's recipe at N = 512 ranks: η_base·N peak, 8-epoch warmup,
//! // γ = 0.8 decay per epoch.
//! let schedule = WarmupExpDecay::paper(1e-5, 512, 8, 500);
//! assert!(schedule.lr(0) < schedule.lr(3999));          // ramping
//! assert_eq!(schedule.lr(4000), 512.0 * 1e-5);          // peak
//! assert!(schedule.lr(4500) < schedule.lr(4000));       // decaying
//! ```

#![warn(missing_docs)]

mod adamw;
mod probe;
mod schedule;
mod sgd;

pub use adamw::{AdamW, AdamWConfig, AdamWState};
pub use probe::{flat_norm, InstabilityProbe, SpikeEvent};
pub use schedule::{ConstantLr, LrSchedule, WarmupExpDecay};
pub use sgd::Sgd;
