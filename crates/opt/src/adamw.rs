//! AdamW: Adam with decoupled weight decay (Loshchilov & Hutter 2019).

use matsciml_nn::ParamSet;
use matsciml_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Hyperparameters for [`AdamW`]. Defaults match the paper's Section 4.2:
/// β₁ = 0.9, β₂ = 0.999 ("default momentum values"), ε = 1e-8.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AdamWConfig {
    /// Learning rate (mutable per step via [`AdamW::set_lr`]).
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Division-by-zero guard. Molybog et al. identify gradients decaying
    /// to O(ε) as the trigger for Adam's large-batch instability; the
    /// ablation bench sweeps this knob.
    pub eps: f32,
    /// Decoupled weight-decay coefficient.
    pub weight_decay: f32,
}

impl Default for AdamWConfig {
    fn default() -> Self {
        AdamWConfig {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.01,
        }
    }
}

/// AdamW optimizer state over a [`ParamSet`].
#[derive(Debug, Clone)]
pub struct AdamW {
    cfg: AdamWConfig,
    /// First-moment estimates, one per parameter tensor.
    m: Vec<Tensor>,
    /// Second-moment estimates.
    v: Vec<Tensor>,
    /// Step counter for bias correction.
    t: u64,
}

/// A complete, owned snapshot of an [`AdamW`] instance — everything
/// needed to reconstruct the optimizer mid-run with bit-identical future
/// updates. This is the checkpointing surface: `matsciml-ckpt` encodes
/// and decodes this struct, never the optimizer's private fields.
#[derive(Debug, Clone)]
pub struct AdamWState {
    /// Hyperparameters at snapshot time (including the scheduler-mutated
    /// learning rate, which the trainer overwrites each step anyway).
    pub cfg: AdamWConfig,
    /// First-moment estimates, one per parameter tensor.
    pub m: Vec<Tensor>,
    /// Second-moment estimates, aligned with `m`.
    pub v: Vec<Tensor>,
    /// Completed update count (drives bias correction).
    pub t: u64,
}

impl AdamW {
    /// Initialize zero moment state matching the store's layout.
    pub fn new(params: &ParamSet, cfg: AdamWConfig) -> Self {
        let m = (0..params.len())
            .map(|i| Tensor::zeros(params.value(matsciml_nn::ParamId(i)).shape()))
            .collect::<Vec<_>>();
        let v = m.clone();
        AdamW { cfg, m, v, t: 0 }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.cfg.lr
    }

    /// Set the learning rate (called by the scheduler each step).
    pub fn set_lr(&mut self, lr: f32) {
        self.cfg.lr = lr;
    }

    /// Step count so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Snapshot the full optimizer state for checkpointing. Tensor clones
    /// are O(1) handle copies, so this is cheap to call mid-run.
    pub fn export_state(&self) -> AdamWState {
        AdamWState {
            cfg: self.cfg,
            m: self.m.clone(),
            v: self.v.clone(),
            t: self.t,
        }
    }

    /// Rebuild an optimizer from a snapshot. The next
    /// [`AdamW::step`] continues the bias-correction and moment
    /// trajectories exactly where the snapshotted instance would have.
    pub fn from_state(state: AdamWState) -> Self {
        assert_eq!(
            state.m.len(),
            state.v.len(),
            "AdamW state: m/v moment counts differ"
        );
        for (i, (m, v)) in state.m.iter().zip(&state.v).enumerate() {
            assert_eq!(
                m.shape(),
                v.shape(),
                "AdamW state: moment {i} has mismatched m/v shapes"
            );
        }
        AdamW {
            cfg: state.cfg,
            m: state.m,
            v: state.v,
            t: state.t,
        }
    }

    /// Apply one update from the gradients currently accumulated in
    /// `params` (the caller zeroes them afterwards).
    pub fn step(&mut self, params: &mut ParamSet) {
        self.t += 1;
        let AdamWConfig {
            lr,
            beta1,
            beta2,
            eps,
            weight_decay,
        } = self.cfg;
        let bc1 = 1.0 - beta1.powi(self.t as i32);
        let bc2 = 1.0 - beta2.powi(self.t as i32);

        for (i, (value, grad)) in params.pairs_mut().enumerate() {
            // Fused slice kernel: moments, bias correction, and the
            // decoupled-decay update in one pass over each tensor.
            matsciml_tensor::kernels::adamw_update(
                value.as_mut_slice(),
                self.m[i].as_mut_slice(),
                self.v[i].as_mut_slice(),
                grad.as_slice(),
                lr,
                beta1,
                beta2,
                eps,
                weight_decay,
                bc1,
                bc2,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matsciml_autograd::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Quadratic bowl: loss = mean((p - target)^2).
    fn quadratic_step(ps: &mut ParamSet, target: &Tensor) -> f32 {
        ps.zero_grads();
        let mut g = Graph::new();
        let p = ps.leaf(&mut g, matsciml_nn::ParamId(0));
        let loss = g.mse_loss(p, target, None);
        let val = g.value(loss).item();
        g.backward(loss);
        ps.absorb_grads(&g, 1.0);
        val
    }

    #[test]
    fn converges_on_quadratic() {
        let mut ps = ParamSet::new();
        ps.register("p", Tensor::from_vec(&[4], vec![5.0, -3.0, 2.0, 8.0]).unwrap());
        let target = Tensor::zeros(&[4]);
        let mut opt = AdamW::new(
            &ps,
            AdamWConfig {
                lr: 0.1,
                weight_decay: 0.0,
                ..Default::default()
            },
        );
        let first = quadratic_step(&mut ps, &target);
        opt.step(&mut ps);
        for _ in 0..300 {
            quadratic_step(&mut ps, &target);
            opt.step(&mut ps);
        }
        let last = quadratic_step(&mut ps, &target);
        assert!(last < first * 1e-3, "AdamW failed to converge: {first} -> {last}");
    }

    #[test]
    fn first_step_moves_by_lr_regardless_of_gradient_scale() {
        // Adam's signature: the very first update is ~lr * sign(g).
        for scale in [1.0f32, 100.0] {
            let mut ps = ParamSet::new();
            ps.register("p", Tensor::from_vec(&[1], vec![0.0]).unwrap());
            let target = Tensor::from_vec(&[1], vec![-scale]).unwrap();
            let mut opt = AdamW::new(
                &ps,
                AdamWConfig {
                    lr: 0.01,
                    weight_decay: 0.0,
                    ..Default::default()
                },
            );
            quadratic_step(&mut ps, &target);
            opt.step(&mut ps);
            let moved = ps.value(matsciml_nn::ParamId(0)).item();
            assert!(
                (moved + 0.01).abs() < 1e-4,
                "scale {scale}: first step should be ≈ -lr, got {moved}"
            );
        }
    }

    #[test]
    fn weight_decay_is_decoupled_from_gradient() {
        // With zero gradient, AdamW must still shrink weights by lr*wd.
        let mut ps = ParamSet::new();
        ps.register("p", Tensor::from_vec(&[1], vec![1.0]).unwrap());
        let mut opt = AdamW::new(
            &ps,
            AdamWConfig {
                lr: 0.1,
                weight_decay: 0.5,
                ..Default::default()
            },
        );
        // Gradients are zero (freshly registered).
        opt.step(&mut ps);
        let v = ps.value(matsciml_nn::ParamId(0)).item();
        assert!((v - 0.95).abs() < 1e-6, "expected 1 - lr*wd = 0.95, got {v}");
    }

    #[test]
    fn set_lr_takes_effect_next_step() {
        let mut ps = ParamSet::new();
        ps.register("p", Tensor::from_vec(&[1], vec![1.0]).unwrap());
        let target = Tensor::zeros(&[1]);
        let mut opt = AdamW::new(
            &ps,
            AdamWConfig {
                lr: 0.0,
                weight_decay: 0.0,
                ..Default::default()
            },
        );
        quadratic_step(&mut ps, &target);
        opt.step(&mut ps);
        assert_eq!(ps.value(matsciml_nn::ParamId(0)).item(), 1.0, "lr=0 must not move");
        opt.set_lr(0.05);
        quadratic_step(&mut ps, &target);
        opt.step(&mut ps);
        assert!(ps.value(matsciml_nn::ParamId(0)).item() < 1.0);
    }

    #[test]
    fn trains_a_small_network_better_than_chance() {
        // End-to-end: AdamW on a 2-layer net fits y = x1 - x2.
        let mut rng = StdRng::seed_from_u64(1);
        let mut ps = ParamSet::new();
        let lin = matsciml_nn::Linear::new(&mut ps, "l", 2, 1, &mut rng);
        let x = Tensor::randn(&[32, 2], 0.0, 1.0, &mut rng);
        let target = Tensor::from_fn(&[32, 1], |i| x.at2(i, 0) - x.at2(i, 1));
        let mut opt = AdamW::new(
            &ps,
            AdamWConfig {
                lr: 0.05,
                weight_decay: 0.0,
                ..Default::default()
            },
        );
        let mut last = f32::INFINITY;
        for _ in 0..200 {
            ps.zero_grads();
            let mut g = Graph::new();
            let input = g.input(x.clone());
            let y = lin.forward(&mut g, &ps, input);
            let loss = g.mse_loss(y, &target, None);
            last = g.value(loss).item();
            g.backward(loss);
            ps.absorb_grads(&g, 1.0);
            opt.step(&mut ps);
        }
        assert!(last < 1e-3, "final loss {last}");
    }
}
