//! Training-stability diagnostics.
//!
//! Molybog et al. ("A Theory on Adam Instability in Large-Scale Machine
//! Learning", 2023) tie Adam's large-batch loss spikes to (a) gradient
//! norms decaying toward the optimizer's ε and (b) violated Markovian
//! (time-uncorrelated) update dynamics. The [`InstabilityProbe`] records
//! exactly those observables — gradient norms, the cosine time-correlation
//! of consecutive gradients, and loss-spike events — so the Fig. 3 / Fig. 6
//! reproductions can report *why* a configuration destabilized, not just
//! that it did.

use matsciml_nn::ParamSet;
use matsciml_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A detected loss spike.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SpikeEvent {
    /// Optimizer step at which the spike was observed.
    pub step: u64,
    /// The spiking loss value.
    pub loss: f32,
    /// The running median it was compared against.
    pub baseline: f32,
}

/// Rolling recorder of gradient norms, gradient time-correlation, and loss
/// spikes.
#[derive(Debug, Clone)]
pub struct InstabilityProbe {
    window: usize,
    spike_factor: f32,
    recent_losses: Vec<f32>,
    prev_grad: Option<Vec<f32>>,
    /// Per-step gradient L2 norms.
    pub grad_norms: Vec<f32>,
    /// Per-step cosine similarity between consecutive gradient directions
    /// (first entry is 0). Sustained positive values indicate the
    /// non-Markovian regime Molybog et al. associate with divergence.
    pub grad_time_correlation: Vec<f32>,
    /// Detected spikes.
    pub spikes: Vec<SpikeEvent>,
    step: u64,
}

impl InstabilityProbe {
    /// A probe using a rolling window of `window` losses and flagging a
    /// spike when loss exceeds `spike_factor ×` the window median.
    pub fn new(window: usize, spike_factor: f32) -> Self {
        InstabilityProbe {
            window: window.max(2),
            spike_factor,
            recent_losses: Vec::new(),
            prev_grad: None,
            grad_norms: Vec::new(),
            grad_time_correlation: Vec::new(),
            spikes: Vec::new(),
            step: 0,
        }
    }

    /// Record one optimizer step: the loss value and the gradients
    /// currently accumulated in `params` (call before zeroing them).
    pub fn observe(&mut self, loss: f32, params: &ParamSet) {
        // Flatten the gradient into one direction vector for the
        // time-correlation estimate. Sampling every tensor is affordable at
        // the model sizes the toolkit trains.
        let mut flat = Vec::new();
        for i in 0..params.len() {
            flat.extend_from_slice(params.grad(matsciml_nn::ParamId(i)).as_slice());
        }
        let norm = flat.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>().sqrt();
        self.grad_norms.push(norm as f32);

        let corr = match &self.prev_grad {
            Some(prev) if prev.len() == flat.len() => {
                let dot: f64 = prev
                    .iter()
                    .zip(&flat)
                    .map(|(&a, &b)| (a as f64) * (b as f64))
                    .sum();
                let pn = prev.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>().sqrt();
                if pn > 0.0 && norm > 0.0 {
                    (dot / (pn * norm)) as f32
                } else {
                    0.0
                }
            }
            _ => 0.0,
        };
        self.grad_time_correlation.push(corr);
        self.prev_grad = Some(flat);

        // Spike detection against the rolling median.
        if self.recent_losses.len() >= self.window {
            let mut sorted = self.recent_losses.clone();
            sorted.sort_by(f32::total_cmp);
            let median = sorted[sorted.len() / 2];
            if loss.is_finite() && median > 0.0 && loss > self.spike_factor * median {
                self.spikes.push(SpikeEvent {
                    step: self.step,
                    loss,
                    baseline: median,
                });
            }
            if !loss.is_finite() {
                self.spikes.push(SpikeEvent {
                    step: self.step,
                    loss,
                    baseline: median,
                });
            }
        }
        self.recent_losses.push(loss);
        if self.recent_losses.len() > self.window {
            self.recent_losses.remove(0);
        }
        self.step += 1;
    }

    /// Number of spike events so far.
    pub fn spike_count(&self) -> usize {
        self.spikes.len()
    }

    /// Mean gradient time-correlation over the recorded run (excluding the
    /// seed entry).
    pub fn mean_time_correlation(&self) -> f32 {
        if self.grad_time_correlation.len() <= 1 {
            return 0.0;
        }
        let tail = &self.grad_time_correlation[1..];
        tail.iter().sum::<f32>() / tail.len() as f32
    }

    /// Fraction of recorded steps whose gradient norm is below `threshold`
    /// (the "gradients at the order of ε" symptom).
    pub fn fraction_below(&self, threshold: f32) -> f32 {
        if self.grad_norms.is_empty() {
            return 0.0;
        }
        self.grad_norms.iter().filter(|&&n| n < threshold).count() as f32
            / self.grad_norms.len() as f32
    }
}

/// Gradient norm of a set of raw tensors (used by the throughput model's
/// allreduce cost calibration in `matsciml-train`).
pub fn flat_norm(tensors: &[Tensor]) -> f32 {
    tensors.iter().map(Tensor::sumsq).sum::<f64>().sqrt() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use matsciml_autograd::Graph;
    use matsciml_nn::ParamId;

    fn store_with_grad(grad: &[f32]) -> ParamSet {
        let mut ps = ParamSet::new();
        ps.register("p", Tensor::zeros(&[grad.len()]));
        // Drive the gradient accumulator through a tape so we exercise the
        // real path: loss = sum(p * g_const).
        let mut g = Graph::new();
        let p = ps.leaf(&mut g, ParamId(0));
        let weights = g.input(Tensor::from_vec(&[grad.len()], grad.to_vec()).unwrap());
        let prod = g.mul(p, weights);
        let loss = g.sum_all(prod);
        g.backward(loss);
        ps.absorb_grads(&g, 1.0);
        ps
    }

    #[test]
    fn records_norms_and_correlation() {
        let mut probe = InstabilityProbe::new(4, 3.0);
        let a = store_with_grad(&[1.0, 0.0]);
        let b = store_with_grad(&[0.0, 1.0]);
        probe.observe(1.0, &a);
        probe.observe(1.0, &b);
        probe.observe(1.0, &b);
        assert!((probe.grad_norms[0] - 1.0).abs() < 1e-6);
        assert_eq!(probe.grad_time_correlation[0], 0.0);
        // Orthogonal then identical gradients.
        assert!(probe.grad_time_correlation[1].abs() < 1e-6);
        assert!((probe.grad_time_correlation[2] - 1.0).abs() < 1e-6);
        assert!((probe.mean_time_correlation() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn flags_spikes_against_rolling_median() {
        let mut probe = InstabilityProbe::new(3, 2.0);
        let ps = store_with_grad(&[1.0]);
        for _ in 0..5 {
            probe.observe(1.0, &ps);
        }
        assert_eq!(probe.spike_count(), 0);
        probe.observe(5.0, &ps); // 5 > 2 * median(1.0)
        assert_eq!(probe.spike_count(), 1);
        assert_eq!(probe.spikes[0].loss, 5.0);
    }

    #[test]
    fn non_finite_loss_counts_as_spike() {
        let mut probe = InstabilityProbe::new(2, 10.0);
        let ps = store_with_grad(&[1.0]);
        probe.observe(1.0, &ps);
        probe.observe(1.0, &ps);
        probe.observe(f32::NAN, &ps);
        assert_eq!(probe.spike_count(), 1);
    }

    #[test]
    fn fraction_below_threshold() {
        let mut probe = InstabilityProbe::new(4, 3.0);
        probe.observe(1.0, &store_with_grad(&[10.0]));
        probe.observe(1.0, &store_with_grad(&[0.001]));
        probe.observe(1.0, &store_with_grad(&[0.002]));
        assert!((probe.fraction_below(0.01) - 2.0 / 3.0).abs() < 1e-6);
    }
}
