//! Learning-rate schedules.
//!
//! The paper's recipe (Section 4.2 / Appendix B): the base rate η_base is
//! scaled by the DDP world size N (Goyal et al. 2018), ramped linearly from
//! zero over a warmup of several epochs, then decayed exponentially with
//! γ = 0.8 per epoch.

use serde::{Deserialize, Serialize};

/// A deterministic mapping from optimizer step to learning rate.
pub trait LrSchedule: Send + Sync {
    /// Learning rate at (0-based) step `step`.
    fn lr(&self, step: u64) -> f32;
}

/// A constant learning rate.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ConstantLr(
    /// The rate.
    pub f32,
);

impl LrSchedule for ConstantLr {
    fn lr(&self, _step: u64) -> f32 {
        self.0
    }
}

/// Linear warmup to `peak_lr` over `warmup_steps`, then per-epoch
/// exponential decay by `gamma`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WarmupExpDecay {
    /// Rate reached at the end of warmup (η_base · N for DDP).
    pub peak_lr: f32,
    /// Number of warmup steps (paper: 8 epochs' worth).
    pub warmup_steps: u64,
    /// Steps per epoch — decay is applied per completed epoch after warmup.
    pub steps_per_epoch: u64,
    /// Per-epoch decay factor (paper: 0.8).
    pub gamma: f32,
}

impl WarmupExpDecay {
    /// The paper's configuration: η_base scaled by `world_size`, warmed up
    /// over `warmup_epochs`, decayed by γ = 0.8 per epoch.
    pub fn paper(base_lr: f32, world_size: usize, warmup_epochs: u64, steps_per_epoch: u64) -> Self {
        WarmupExpDecay {
            peak_lr: base_lr * world_size as f32,
            warmup_steps: warmup_epochs * steps_per_epoch,
            steps_per_epoch: steps_per_epoch.max(1),
            gamma: 0.8,
        }
    }
}

impl LrSchedule for WarmupExpDecay {
    fn lr(&self, step: u64) -> f32 {
        if self.warmup_steps > 0 && step < self.warmup_steps {
            // Linear ramp; step 0 gets 1/warmup of peak rather than zero so
            // the very first update is non-trivial.
            self.peak_lr * (step + 1) as f32 / self.warmup_steps as f32
        } else {
            let epochs_past = (step - self.warmup_steps) / self.steps_per_epoch;
            self.peak_lr * self.gamma.powi(epochs_past as i32)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = ConstantLr(0.3);
        assert_eq!(s.lr(0), 0.3);
        assert_eq!(s.lr(1_000_000), 0.3);
    }

    #[test]
    fn warmup_ramps_linearly_to_peak() {
        let s = WarmupExpDecay {
            peak_lr: 1.0,
            warmup_steps: 10,
            steps_per_epoch: 5,
            gamma: 0.8,
        };
        assert!((s.lr(0) - 0.1).abs() < 1e-6);
        assert!((s.lr(4) - 0.5).abs() < 1e-6);
        assert!((s.lr(9) - 1.0).abs() < 1e-6);
        // Monotone during warmup.
        for t in 1..10 {
            assert!(s.lr(t) > s.lr(t - 1));
        }
    }

    #[test]
    fn decay_applies_per_epoch_after_warmup() {
        let s = WarmupExpDecay {
            peak_lr: 1.0,
            warmup_steps: 10,
            steps_per_epoch: 5,
            gamma: 0.8,
        };
        // First post-warmup epoch holds at peak.
        assert!((s.lr(10) - 1.0).abs() < 1e-6);
        assert!((s.lr(14) - 1.0).abs() < 1e-6);
        // Next epoch decayed once, etc.
        assert!((s.lr(15) - 0.8).abs() < 1e-6);
        assert!((s.lr(20) - 0.64).abs() < 1e-6);
    }

    #[test]
    fn paper_constructor_scales_by_world_size() {
        let s = WarmupExpDecay::paper(1e-5, 512, 8, 500);
        assert!((s.peak_lr - 512.0 * 1e-5).abs() < 1e-9);
        assert_eq!(s.warmup_steps, 4000);
        assert_eq!(s.gamma, 0.8);
    }

    #[test]
    fn zero_warmup_starts_at_peak() {
        let s = WarmupExpDecay {
            peak_lr: 0.5,
            warmup_steps: 0,
            steps_per_epoch: 10,
            gamma: 0.5,
        };
        assert_eq!(s.lr(0), 0.5);
        assert_eq!(s.lr(10), 0.25);
    }
}
