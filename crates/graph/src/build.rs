//! Graph construction from point clouds.
//!
//! Both recipes use a uniform spatial hash grid, giving O(n) expected
//! construction for the bounded-density point clouds materials produce
//! (atoms cannot overlap), instead of the naive O(n²) all-pairs scan.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use matsciml_tensor::Vec3;

use crate::material_graph::MaterialGraph;

/// FxHash-style multiply-rotate hasher for the grid's integer-triple keys.
/// SipHash (std's default) is DoS-resistant but dominates bin lookup cost
/// for these tiny trusted keys; this folds each word in two arithmetic ops.
#[derive(Default)]
struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x517c_c1b7_2722_0a95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }

    #[inline]
    fn write_i32(&mut self, v: i32) {
        self.add(v as u32 as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Cells of side `cell` indexed by integer triple.
struct SpatialGrid {
    cell: f32,
    bins: HashMap<(i32, i32, i32), Vec<u32>, FxBuildHasher>,
}

impl SpatialGrid {
    fn build(points: &[Vec3], cell: f32) -> Self {
        let mut bins: HashMap<(i32, i32, i32), Vec<u32>, FxBuildHasher> = HashMap::default();
        for (i, p) in points.iter().enumerate() {
            bins.entry(Self::key(p, cell)).or_default().push(i as u32);
        }
        SpatialGrid { cell, bins }
    }

    #[inline]
    fn key(p: &Vec3, cell: f32) -> (i32, i32, i32) {
        (
            (p.x / cell).floor() as i32,
            (p.y / cell).floor() as i32,
            (p.z / cell).floor() as i32,
        )
    }

    /// Visit every point in the 27-cell neighborhood of `p`.
    fn for_neighborhood(&self, p: &Vec3, mut f: impl FnMut(u32)) {
        let (kx, ky, kz) = Self::key(p, self.cell);
        for dx in -1..=1 {
            for dy in -1..=1 {
                for dz in -1..=1 {
                    if let Some(v) = self.bins.get(&(kx + dx, ky + dy, kz + dz)) {
                        for &i in v {
                            f(i);
                        }
                    }
                }
            }
        }
    }
}

/// Node-count threshold above which `radius_graph` distributes the
/// per-node neighborhood scans over worker threads. Small clouds (single
/// crystals are tens of atoms) stay on the serial path: a thread-scope
/// spawn costs more than the whole scan.
const RADIUS_PAR_MIN: usize = 256;

/// Collect node `i`'s neighbor list into `scratch`: every `j` within the
/// cutoff, optionally capped at the `max_neighbors` closest. The list
/// order — grid-neighborhood walk order, or ascending distance once the
/// cap forces a sort — is exactly what the edge stream records, so both
/// the serial and parallel drivers must go through this one helper.
fn neighbors_of(
    grid: &SpatialGrid,
    positions: &[Vec3],
    i: usize,
    r2: f32,
    max_neighbors: Option<usize>,
    scratch: &mut Vec<(f32, u32)>,
) {
    scratch.clear();
    let pi = positions[i];
    grid.for_neighborhood(&pi, |j| {
        if j as usize != i {
            let d2 = (pi - positions[j as usize]).norm_sq();
            if d2 <= r2 {
                scratch.push((d2, j));
            }
        }
    });
    if let Some(cap) = max_neighbors {
        if scratch.len() > cap {
            scratch.sort_by(|a, b| a.0.total_cmp(&b.0));
            scratch.truncate(cap);
        }
    }
}

/// Connect every pair of atoms closer than `radius`, both directions,
/// optionally capping each node's neighbor count at `max_neighbors`
/// (closest first), which is the OCP convention for dense slabs.
///
/// Clouds of `RADIUS_PAR_MIN` atoms or more scan their neighborhoods on
/// worker threads. The result is bit-identical to the serial scan at any
/// thread count: the grid is built serially (so every node walks the same
/// bins in the same order), each node's list is produced independently by
/// `neighbors_of`, and the lists are appended in ascending node order.
pub fn radius_graph(
    species: Vec<u32>,
    positions: Vec<Vec3>,
    radius: f32,
    max_neighbors: Option<usize>,
) -> MaterialGraph {
    let parallel = positions.len() >= RADIUS_PAR_MIN && rayon::current_num_threads() > 1;
    radius_graph_impl(species, positions, radius, max_neighbors, parallel)
}

fn radius_graph_impl(
    species: Vec<u32>,
    positions: Vec<Vec3>,
    radius: f32,
    max_neighbors: Option<usize>,
    parallel: bool,
) -> MaterialGraph {
    assert!(radius > 0.0, "radius must be positive");
    let grid = SpatialGrid::build(&positions, radius);
    let r2 = radius * radius;
    let n = positions.len();
    let mut graph = MaterialGraph::new(species, positions);

    if parallel {
        use rayon::prelude::*;
        let positions = &graph.positions;
        let lists: Vec<Vec<u32>> = (0..n)
            .into_par_iter()
            .map(|i| {
                let mut scratch = Vec::new();
                neighbors_of(&grid, positions, i, r2, max_neighbors, &mut scratch);
                scratch.iter().map(|&(_, j)| j).collect()
            })
            .collect();
        for (i, list) in lists.iter().enumerate() {
            for &j in list {
                graph.src.push(i as u32);
                graph.dst.push(j);
            }
        }
    } else {
        let mut scratch: Vec<(f32, u32)> = Vec::new();
        for i in 0..n {
            neighbors_of(&grid, &graph.positions, i, r2, max_neighbors, &mut scratch);
            for &(_, j) in scratch.iter() {
                graph.src.push(i as u32);
                graph.dst.push(j);
            }
        }
    }
    graph
}

/// Connect every ordered pair of distinct atoms (the dense point-cloud
/// representation: attention-style models see all pairs and need no
/// structural prior). O(n²) edges — intended for the small clouds
/// (≲ 50 atoms) the toolkit's point-cloud models consume.
pub fn complete_graph(species: Vec<u32>, positions: Vec<Vec3>) -> MaterialGraph {
    let n = positions.len();
    let mut graph = MaterialGraph::new(species, positions);
    graph.src.reserve(n * n.saturating_sub(1));
    graph.dst.reserve(n * n.saturating_sub(1));
    for i in 0..n as u32 {
        for j in 0..n as u32 {
            if i != j {
                graph.src.push(i);
                graph.dst.push(j);
            }
        }
    }
    graph
}

/// Connect every atom to its `k` nearest neighbors (directed `i -> nbr`,
/// so in-neighborhoods may exceed k). Falls back to all available
/// neighbors when the cloud has fewer than `k + 1` atoms.
pub fn knn_graph(species: Vec<u32>, positions: Vec<Vec3>, k: usize) -> MaterialGraph {
    let n = positions.len();
    let graph_k = k.min(n.saturating_sub(1));
    let mut graph = MaterialGraph::new(species, positions);
    if graph_k == 0 {
        return graph;
    }
    // Exact k-NN via partial selection; n is tens of atoms for crystals, so
    // the O(n²) scan is cheaper than a grid here — but keep allocation out
    // of the inner loop.
    let mut dists: Vec<(f32, u32)> = Vec::with_capacity(n);
    for i in 0..n {
        dists.clear();
        let pi = graph.positions[i];
        for (j, pj) in graph.positions.iter().enumerate() {
            if j != i {
                dists.push(((pi - *pj).norm_sq(), j as u32));
            }
        }
        dists.select_nth_unstable_by(graph_k - 1, |a, b| a.0.total_cmp(&b.0));
        for &(_, j) in &dists[..graph_k] {
            graph.src.push(i as u32);
            graph.dst.push(j);
        }
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize, spacing: f32) -> Vec<Vec3> {
        (0..n).map(|i| Vec3::new(i as f32 * spacing, 0.0, 0.0)).collect()
    }

    #[test]
    fn radius_graph_connects_only_within_cutoff() {
        let g = radius_graph(vec![0; 4], line(4, 1.0), 1.5, None);
        // Chain: each interior node sees 2 neighbors, ends see 1.
        assert_eq!(g.num_edges(), 6);
        assert!(g.is_symmetric());
        assert!(g.edge_lengths_sq().iter().all(|&d| d <= 1.5 * 1.5));
    }

    #[test]
    fn radius_graph_cap_keeps_closest() {
        // Node 0 at origin with 3 neighbors at distances 1, 2, 3.
        let pts = vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(2.0, 0.0, 0.0),
            Vec3::new(3.0, 0.0, 0.0),
        ];
        let g = radius_graph(vec![0; 4], pts, 10.0, Some(1));
        // Every node keeps exactly one (closest) neighbor.
        assert_eq!(g.num_edges(), 4);
        for (e, (&s, &d)) in g.src.iter().zip(&g.dst).enumerate() {
            let dist = (g.positions[s as usize] - g.positions[d as usize]).norm();
            assert!(dist <= 1.0 + 1e-6, "edge {e} kept a non-closest neighbor");
        }
    }

    #[test]
    fn radius_graph_matches_bruteforce() {
        // Hash-grid construction must agree with the O(n²) reference.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        let pts: Vec<Vec3> = (0..60)
            .map(|_| Vec3::new(rng.gen_range(-3.0..3.0), rng.gen_range(-3.0..3.0), rng.gen_range(-3.0..3.0)))
            .collect();
        let r = 1.2f32;
        let g = radius_graph(vec![0; 60], pts.clone(), r, None);
        let mut expected: Vec<(u32, u32)> = Vec::new();
        for i in 0..pts.len() {
            for j in 0..pts.len() {
                if i != j && (pts[i] - pts[j]).norm_sq() <= r * r {
                    expected.push((i as u32, j as u32));
                }
            }
        }
        let mut got: Vec<(u32, u32)> = g.src.iter().copied().zip(g.dst.iter().copied()).collect();
        got.sort_unstable();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn radius_graph_parallel_is_bit_identical_to_serial() {
        // Above the parallel threshold, the threaded scan must produce the
        // exact same edge stream (same edges, same order) as the serial
        // one — with and without a neighbor cap.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let n = RADIUS_PAR_MIN + 150;
        let mut rng = StdRng::seed_from_u64(31);
        let pts: Vec<Vec3> = (0..n)
            .map(|_| {
                Vec3::new(
                    rng.gen_range(-8.0..8.0),
                    rng.gen_range(-8.0..8.0),
                    rng.gen_range(-8.0..8.0),
                )
            })
            .collect();
        for cap in [None, Some(6)] {
            let serial = radius_graph_impl(vec![0; n], pts.clone(), 2.0, cap, false);
            let par = radius_graph_impl(vec![0; n], pts.clone(), 2.0, cap, true);
            assert!(serial.num_edges() > 0, "test cloud must produce edges");
            assert_eq!(serial.src, par.src, "src stream diverged (cap {cap:?})");
            assert_eq!(serial.dst, par.dst, "dst stream diverged (cap {cap:?})");
        }
    }

    #[test]
    fn radius_graph_public_entry_crosses_parallel_threshold() {
        // The public entry point picks the parallel path for big clouds;
        // its output must still satisfy the brute-force contract.
        let n = RADIUS_PAR_MIN + 44;
        let pts: Vec<Vec3> = (0..n)
            .map(|i| Vec3::new((i % 20) as f32 * 0.9, ((i / 20) % 20) as f32 * 0.9, (i / 400) as f32 * 0.9))
            .collect();
        let r = 1.1f32;
        let g = radius_graph(vec![0; n], pts.clone(), r, None);
        let mut expected: Vec<(u32, u32)> = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if i != j && (pts[i] - pts[j]).norm_sq() <= r * r {
                    expected.push((i as u32, j as u32));
                }
            }
        }
        let mut got: Vec<(u32, u32)> = g.src.iter().copied().zip(g.dst.iter().copied()).collect();
        got.sort_unstable();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn complete_graph_has_all_ordered_pairs() {
        let g = complete_graph(vec![0; 4], line(4, 1.0));
        assert_eq!(g.num_edges(), 12);
        assert!(g.is_symmetric());
        assert!(g.out_degrees().iter().all(|&d| d == 3));
        // No self-loops.
        assert!(g.src.iter().zip(&g.dst).all(|(a, b)| a != b));
    }

    #[test]
    fn complete_graph_of_singleton_is_edgeless() {
        let g = complete_graph(vec![0], line(1, 1.0));
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn knn_graph_has_exact_out_degree() {
        let g = knn_graph(vec![0; 10], line(10, 1.0), 3);
        assert!(g.out_degrees().iter().all(|&d| d == 3));
        assert_eq!(g.num_edges(), 30);
    }

    #[test]
    fn knn_on_tiny_clouds_degrades_gracefully() {
        let g = knn_graph(vec![0; 2], line(2, 1.0), 5);
        assert_eq!(g.num_edges(), 2);
        let g1 = knn_graph(vec![0], line(1, 1.0), 5);
        assert_eq!(g1.num_edges(), 0);
    }

    #[test]
    fn knn_picks_nearest() {
        let pts = vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(5.0, 0.0, 0.0),
        ];
        let g = knn_graph(vec![0; 3], pts, 1);
        // Node 0's single neighbor must be node 1, not node 2.
        let e0 = g.src.iter().position(|&s| s == 0).unwrap();
        assert_eq!(g.dst[e0], 1);
    }
}
