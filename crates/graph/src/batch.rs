//! Disjoint-union batching of graphs (DGL's `batch` equivalent).

use serde::{Deserialize, Serialize};

use crate::material_graph::MaterialGraph;

/// Many graphs merged into one: node/edge indices offset so the union is
/// disjoint, plus a `graph_ids` segment vector mapping each node back to
/// its source graph (used for per-graph pooling).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchedGraph {
    /// The merged graph.
    pub merged: MaterialGraph,
    /// Source graph index of every node (segment ids for pooling).
    pub graph_ids: Vec<u32>,
    /// Number of graphs in the batch.
    pub num_graphs: usize,
}

impl BatchedGraph {
    /// Merge a slice of graphs. Panics on an empty slice.
    pub fn from_graphs(graphs: &[MaterialGraph]) -> Self {
        assert!(!graphs.is_empty(), "cannot batch zero graphs");
        let total_nodes: usize = graphs.iter().map(MaterialGraph::num_nodes).sum();
        let total_edges: usize = graphs.iter().map(MaterialGraph::num_edges).sum();

        let mut species = Vec::with_capacity(total_nodes);
        let mut positions = Vec::with_capacity(total_nodes);
        let mut src = Vec::with_capacity(total_edges);
        let mut dst = Vec::with_capacity(total_edges);
        let mut graph_ids = Vec::with_capacity(total_nodes);

        let mut offset = 0u32;
        for (gi, g) in graphs.iter().enumerate() {
            species.extend_from_slice(&g.species);
            positions.extend_from_slice(&g.positions);
            graph_ids.extend(std::iter::repeat_n(gi as u32, g.num_nodes()));
            src.extend(g.src.iter().map(|&s| s + offset));
            dst.extend(g.dst.iter().map(|&d| d + offset));
            offset += g.num_nodes() as u32;
        }

        BatchedGraph {
            merged: MaterialGraph {
                species,
                positions,
                src,
                dst,
            },
            graph_ids,
            num_graphs: graphs.len(),
        }
    }

    /// Total node count across the batch.
    pub fn num_nodes(&self) -> usize {
        self.merged.num_nodes()
    }

    /// Total edge count across the batch.
    pub fn num_edges(&self) -> usize {
        self.merged.num_edges()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matsciml_tensor::Vec3;

    fn pair_graph(species: u32) -> MaterialGraph {
        let mut g = MaterialGraph::new(
            vec![species, species],
            vec![Vec3::zero(), Vec3::new(1.0, 0.0, 0.0)],
        );
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g
    }

    #[test]
    fn batch_offsets_edges_and_tracks_segments() {
        let b = BatchedGraph::from_graphs(&[pair_graph(1), pair_graph(2), pair_graph(3)]);
        assert_eq!(b.num_graphs, 3);
        assert_eq!(b.num_nodes(), 6);
        assert_eq!(b.num_edges(), 6);
        assert_eq!(b.graph_ids, vec![0, 0, 1, 1, 2, 2]);
        assert_eq!(b.merged.species, vec![1, 1, 2, 2, 3, 3]);
        // Second graph's edges must connect nodes 2 and 3.
        assert_eq!(b.merged.src[2], 2);
        assert_eq!(b.merged.dst[2], 3);
        assert_eq!(b.merged.src[4], 4);
    }

    #[test]
    fn no_cross_graph_edges() {
        let b = BatchedGraph::from_graphs(&[pair_graph(0), pair_graph(0)]);
        for (&s, &d) in b.merged.src.iter().zip(&b.merged.dst) {
            assert_eq!(
                b.graph_ids[s as usize], b.graph_ids[d as usize],
                "edge ({s},{d}) crosses graph boundary"
            );
        }
    }

    #[test]
    fn singleton_batch_is_identity() {
        let g = pair_graph(5);
        let b = BatchedGraph::from_graphs(std::slice::from_ref(&g));
        assert_eq!(b.merged.species, g.species);
        assert_eq!(b.merged.src, g.src);
        assert_eq!(b.graph_ids, vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "cannot batch zero graphs")]
    fn empty_batch_panics() {
        let _ = BatchedGraph::from_graphs(&[]);
    }

    #[test]
    fn batch_with_edgeless_graph() {
        let lone = MaterialGraph::new(vec![7], vec![Vec3::zero()]);
        let b = BatchedGraph::from_graphs(&[lone, pair_graph(1)]);
        assert_eq!(b.num_nodes(), 3);
        assert_eq!(b.num_edges(), 2);
        assert_eq!(b.graph_ids, vec![0, 1, 1]);
        assert_eq!(b.merged.src, vec![1, 2]);
    }
}
