//! Graph data structures for atomistic systems.
//!
//! A [`MaterialGraph`] is a directed edge list over atoms (the layout GNN
//! message passing consumes directly: `src`/`dst` index vectors feeding
//! gather/scatter kernels). Construction from point clouds supports the two
//! standard recipes — radius cutoff and k-nearest-neighbors — and
//! [`BatchedGraph`] merges many graphs into one disjoint union with a
//! `graph_ids` segment vector, mirroring DGL's `batch`.

//! # Example
//!
//! ```
//! use matsciml_graph::{radius_graph, BatchedGraph};
//! use matsciml_tensor::Vec3;
//!
//! let g = radius_graph(
//!     vec![0, 1],                                  // species
//!     vec![Vec3::zero(), Vec3::new(1.0, 0.0, 0.0)], // positions
//!     1.5,                                          // cutoff (Å)
//!     None,
//! );
//! assert_eq!(g.num_edges(), 2); // both directions
//!
//! let batch = BatchedGraph::from_graphs(&[g.clone(), g]);
//! assert_eq!(batch.num_nodes(), 4);
//! assert_eq!(batch.graph_ids, vec![0, 0, 1, 1]);
//! ```

#![warn(missing_docs)]

mod batch;
mod cache;
mod csr;
mod build;
mod material_graph;

pub use batch::BatchedGraph;
pub use cache::{
    graph_cache_enabled, graph_cache_stats, knn_graph_cached, radius_graph_cached,
    reset_graph_cache, set_graph_cache, set_graph_cache_budget, GraphCacheStats,
    DEFAULT_GRAPH_CACHE_BUDGET,
};
pub use csr::{permute_graph, rcm_order, reorder_for_locality, CsrGraph};
pub use build::{complete_graph, knn_graph, radius_graph};
pub use material_graph::MaterialGraph;
