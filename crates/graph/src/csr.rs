//! Compressed sparse row (CSR) adjacency and cache-aware node reordering.
//!
//! The paper's Section 2.1 notes that "graph structures can exhibit poor
//! cache reuse without reordering" (citing Graphite, ISCA'22). This module
//! provides the two pieces that observation implies: a CSR view of a
//! [`MaterialGraph`] (neighbor lists contiguous in memory, the layout
//! sparse GNN kernels traverse) and a reverse-Cuthill–McKee-style BFS
//! reordering that clusters connected atoms into nearby indices so
//! gather/scatter walks touch nearby cache lines. The criterion bench
//! `graph/reorder` measures the effect on scatter-gather traffic.

use serde::{Deserialize, Serialize};

use crate::material_graph::MaterialGraph;

/// CSR adjacency: `neighbors[offsets[i]..offsets[i+1]]` are the out-edge
/// destinations of node `i`, with `edge_ids` mapping each slot back to the
/// originating edge-list position (for edge-feature lookups).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CsrGraph {
    /// Row offsets, length `n + 1`.
    pub offsets: Vec<u32>,
    /// Flattened neighbor lists.
    pub neighbors: Vec<u32>,
    /// Edge-list index of each CSR slot.
    pub edge_ids: Vec<u32>,
}

impl CsrGraph {
    /// Build from a graph's edge list (counting sort over sources: O(V+E)).
    pub fn from_graph(g: &MaterialGraph) -> Self {
        let n = g.num_nodes();
        let e = g.num_edges();
        let mut counts = vec![0u32; n + 1];
        for &s in &g.src {
            counts[s as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut neighbors = vec![0u32; e];
        let mut edge_ids = vec![0u32; e];
        for (eid, (&s, &d)) in g.src.iter().zip(&g.dst).enumerate() {
            let slot = cursor[s as usize] as usize;
            neighbors[slot] = d;
            edge_ids[slot] = eid as u32;
            cursor[s as usize] += 1;
        }
        CsrGraph {
            offsets,
            neighbors,
            edge_ids,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.neighbors.len()
    }

    /// Neighbors of node `i`.
    pub fn neighbors_of(&self, i: usize) -> &[u32] {
        &self.neighbors[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Out-degree of node `i`.
    pub fn degree(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Maximum index distance between edge endpoints — the locality proxy
    /// the reordering minimizes (smaller bandwidth = nearer cache lines).
    pub fn bandwidth(&self) -> usize {
        let mut bw = 0usize;
        for i in 0..self.num_nodes() {
            for &j in self.neighbors_of(i) {
                bw = bw.max((i as i64 - j as i64).unsigned_abs() as usize);
            }
        }
        bw
    }
}

/// Compute a reverse-Cuthill–McKee-style permutation: BFS from a minimum-
/// degree node, visiting neighbors in degree order, then reverse. Returns
/// `perm` where `perm[new_index] = old_index`.
pub fn rcm_order(csr: &CsrGraph) -> Vec<u32> {
    let n = csr.num_nodes();
    let mut visited = vec![false; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);
    // Process every component, seeding each from its min-degree node.
    let mut seeds: Vec<u32> = (0..n as u32).collect();
    seeds.sort_by_key(|&i| csr.degree(i as usize));
    for &seed in &seeds {
        if visited[seed as usize] {
            continue;
        }
        visited[seed as usize] = true;
        let mut queue = std::collections::VecDeque::from([seed]);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            let mut nbrs: Vec<u32> = csr
                .neighbors_of(u as usize)
                .iter()
                .copied()
                .filter(|&v| !visited[v as usize])
                .collect();
            nbrs.sort_by_key(|&v| csr.degree(v as usize));
            for v in nbrs {
                if !visited[v as usize] {
                    visited[v as usize] = true;
                    queue.push_back(v);
                }
            }
        }
    }
    order.reverse();
    order
}

/// Apply a node permutation (`perm[new] = old`) to a graph, renumbering
/// species, positions, and both edge endpoints.
pub fn permute_graph(g: &MaterialGraph, perm: &[u32]) -> MaterialGraph {
    let n = g.num_nodes();
    assert_eq!(perm.len(), n, "permutation length mismatch");
    // inverse: old -> new
    let mut inverse = vec![u32::MAX; n];
    for (new, &old) in perm.iter().enumerate() {
        assert!(
            inverse[old as usize] == u32::MAX,
            "permutation repeats index {old}"
        );
        inverse[old as usize] = new as u32;
    }
    let species = perm.iter().map(|&o| g.species[o as usize]).collect();
    let positions = perm.iter().map(|&o| g.positions[o as usize]).collect();
    let src = g.src.iter().map(|&s| inverse[s as usize]).collect();
    let dst = g.dst.iter().map(|&d| inverse[d as usize]).collect();
    MaterialGraph {
        species,
        positions,
        src,
        dst,
    }
}

/// Reorder a graph for cache locality: CSR → RCM permutation → renumber.
/// Returns the reordered graph and the permutation used.
pub fn reorder_for_locality(g: &MaterialGraph) -> (MaterialGraph, Vec<u32>) {
    let csr = CsrGraph::from_graph(g);
    let perm = rcm_order(&csr);
    (permute_graph(g, &perm), perm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use matsciml_tensor::Vec3;

    fn chain(n: usize) -> MaterialGraph {
        let mut g = MaterialGraph::new(
            vec![0; n],
            (0..n).map(|i| Vec3::new(i as f32, 0.0, 0.0)).collect(),
        );
        for i in 0..n - 1 {
            g.add_edge(i as u32, i as u32 + 1);
            g.add_edge(i as u32 + 1, i as u32);
        }
        g
    }

    #[test]
    fn csr_matches_edge_list() {
        let g = chain(5);
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.num_nodes(), 5);
        assert_eq!(csr.num_edges(), 8);
        assert_eq!(csr.neighbors_of(0), &[1]);
        let mut mid: Vec<u32> = csr.neighbors_of(2).to_vec();
        mid.sort_unstable();
        assert_eq!(mid, vec![1, 3]);
        assert_eq!(csr.degree(0), 1);
        assert_eq!(csr.degree(2), 2);
        // edge_ids point back to the original edge list.
        for i in 0..5 {
            for (slot, &nbr) in csr.neighbors_of(i).iter().enumerate() {
                let eid = csr.edge_ids[csr.offsets[i] as usize + slot] as usize;
                assert_eq!(g.src[eid] as usize, i);
                assert_eq!(g.dst[eid], nbr);
            }
        }
    }

    #[test]
    fn csr_handles_isolated_nodes() {
        let g = MaterialGraph::new(vec![0, 0, 0], vec![Vec3::zero(); 3]);
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.num_edges(), 0);
        assert_eq!(csr.neighbors_of(1), &[] as &[u32]);
        assert_eq!(csr.bandwidth(), 0);
    }

    #[test]
    fn rcm_reduces_bandwidth_of_shuffled_chain() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        // A chain has bandwidth 1 in natural order; shuffle it, then check
        // RCM recovers a low-bandwidth ordering.
        let natural = chain(64);
        let mut shuffled_perm: Vec<u32> = (0..64).collect();
        shuffled_perm.shuffle(&mut rand::rngs::StdRng::seed_from_u64(1));
        let shuffled = permute_graph(&natural, &shuffled_perm);
        let bw_shuffled = CsrGraph::from_graph(&shuffled).bandwidth();
        let (reordered, _) = reorder_for_locality(&shuffled);
        let bw_reordered = CsrGraph::from_graph(&reordered).bandwidth();
        assert!(
            bw_reordered <= 2 && bw_shuffled > 10,
            "RCM should recover chain locality: shuffled {bw_shuffled} → {bw_reordered}"
        );
    }

    #[test]
    fn permutation_preserves_structure() {
        let g = chain(6);
        let perm: Vec<u32> = vec![5, 4, 3, 2, 1, 0];
        let p = permute_graph(&g, &perm);
        assert_eq!(p.num_nodes(), 6);
        assert_eq!(p.num_edges(), g.num_edges());
        // Edge lengths (geometry) are invariant under renumbering.
        let mut a = g.edge_lengths_sq();
        let mut b = p.edge_lengths_sq();
        a.sort_by(f32::total_cmp);
        b.sort_by(f32::total_cmp);
        assert_eq!(a, b);
        // Node 0 in the new graph is old node 5.
        assert_eq!(p.positions[0], g.positions[5]);
    }

    #[test]
    #[should_panic(expected = "repeats index")]
    fn invalid_permutation_rejected() {
        let g = chain(3);
        let _ = permute_graph(&g, &[0, 0, 1]);
    }

    #[test]
    fn rcm_covers_disconnected_components() {
        let mut g = chain(4);
        // Add two isolated nodes.
        g.species.extend([0, 0]);
        g.positions.extend([Vec3::zero(), Vec3::new(9.0, 9.0, 9.0)]);
        let (reordered, perm) = reorder_for_locality(&g);
        assert_eq!(reordered.num_nodes(), 6);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6).collect::<Vec<u32>>(), "perm must be a bijection");
    }
}
