//! Cross-epoch neighbor-list cache.
//!
//! Graph construction ([`crate::radius_graph`] / [`crate::knn_graph`]) is
//! deterministic: bit-identical species, positions, and recipe parameters
//! always produce bit-identical edge lists. Multi-epoch training rebuilds
//! the same neighbor lists every epoch, so this module memoizes them in a
//! process-global LRU keyed by the *exact* input bits — the full species
//! vector, the f32 bit patterns of every position, and the recipe
//! parameters. Full-key equality means a hit returns precisely what a
//! rebuild would, so the cached path is bit-identical by construction
//! (pinned end to end by the train crate's `pipeline_bitwise` test).
//!
//! The cache holds only the edge vectors (`src`/`dst`); the caller keeps
//! its own species/positions. Entries are evicted least-recently-used
//! once the byte budget ([`set_graph_cache_budget`], default 256 MiB) is
//! exceeded.
//!
//! Enabled by default; disable with `MATSCIML_GRAPH_CACHE=0` (or `false`
//! / `off`) or [`set_graph_cache`]. Hits, misses, and evictions are
//! visible through [`graph_cache_stats`] and surface in training run
//! records as `data/graph_cache_hit` / `_miss` / `_evict`.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use matsciml_tensor::Vec3;

use crate::build::{knn_graph, radius_graph};
use crate::material_graph::MaterialGraph;

const MODE_OFF: u8 = 0;
const MODE_ON: u8 = 1;
const MODE_UNSET: u8 = 2;

static MODE: AtomicU8 = AtomicU8::new(MODE_UNSET);

/// Default LRU byte budget: 256 MiB of cached edge lists.
pub const DEFAULT_GRAPH_CACHE_BUDGET: usize = 256 * 1024 * 1024;

static BUDGET: AtomicUsize = AtomicUsize::new(DEFAULT_GRAPH_CACHE_BUDGET);

static GC_HITS: AtomicU64 = AtomicU64::new(0);
static GC_MISSES: AtomicU64 = AtomicU64::new(0);
static GC_EVICTIONS: AtomicU64 = AtomicU64::new(0);

/// Force the graph cache on or off, overriding `MATSCIML_GRAPH_CACHE`.
pub fn set_graph_cache(enabled: bool) {
    MODE.store(if enabled { MODE_ON } else { MODE_OFF }, Ordering::Relaxed);
}

/// Whether graph-construction results are being memoized.
///
/// Defaults to on; the first query consults `MATSCIML_GRAPH_CACHE`
/// (`0`/`false`/`off` disable) and latches the answer.
pub fn graph_cache_enabled() -> bool {
    match MODE.load(Ordering::Relaxed) {
        MODE_ON => true,
        MODE_OFF => false,
        _ => {
            let on = !matches!(
                std::env::var("MATSCIML_GRAPH_CACHE").as_deref(),
                Ok("0") | Ok("false") | Ok("off")
            );
            MODE.store(if on { MODE_ON } else { MODE_OFF }, Ordering::Relaxed);
            on
        }
    }
}

/// Set the LRU byte budget. Takes effect on the next insertion; lowering
/// it does not synchronously shrink the cache.
pub fn set_graph_cache_budget(bytes: usize) {
    BUDGET.store(bytes, Ordering::Relaxed);
}

/// Cumulative graph-cache counters (process-global, monotone).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GraphCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell through to a fresh graph construction.
    pub misses: u64,
    /// Entries dropped to stay within the byte budget.
    pub evictions: u64,
}

impl GraphCacheStats {
    /// Counter deltas accumulated since an earlier snapshot.
    pub fn since(&self, earlier: &GraphCacheStats) -> GraphCacheStats {
        GraphCacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
        }
    }
}

/// Snapshot the cumulative cache counters.
pub fn graph_cache_stats() -> GraphCacheStats {
    GraphCacheStats {
        hits: GC_HITS.load(Ordering::Relaxed),
        misses: GC_MISSES.load(Ordering::Relaxed),
        evictions: GC_EVICTIONS.load(Ordering::Relaxed),
    }
}

/// Zero the counters and drop every cached entry (test/bench isolation).
pub fn reset_graph_cache() {
    GC_HITS.store(0, Ordering::Relaxed);
    GC_MISSES.store(0, Ordering::Relaxed);
    GC_EVICTIONS.store(0, Ordering::Relaxed);
    let mut inner = cache().lock().expect("graph cache poisoned");
    inner.map.clear();
    inner.lru.clear();
    inner.bytes = 0;
}

/// Exact-bits cache key: recipe parameters plus the full structure.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct GraphKey {
    /// `(tag, param_a, param_b)`: radius = `(1, radius bits, cap)`,
    /// knn = `(2, k, 0)`. The cap encodes `None` as `u32::MAX`.
    recipe: [u32; 3],
    species: Vec<u32>,
    /// Position f32 bit patterns, x/y/z flattened.
    pos_bits: Vec<u32>,
}

impl GraphKey {
    fn new(recipe: [u32; 3], species: &[u32], positions: &[Vec3]) -> GraphKey {
        let mut pos_bits = Vec::with_capacity(positions.len() * 3);
        for p in positions {
            pos_bits.push(p.x.to_bits());
            pos_bits.push(p.y.to_bits());
            pos_bits.push(p.z.to_bits());
        }
        GraphKey {
            recipe,
            species: species.to_vec(),
            pos_bits,
        }
    }

    /// Approximate heap footprint of a key (for the byte budget).
    fn bytes(&self) -> usize {
        self.species.len() * 4 + self.pos_bits.len() * 4
    }
}

struct CacheEntry {
    tick: u64,
    src: Vec<u32>,
    dst: Vec<u32>,
    bytes: usize,
}

#[derive(Default)]
struct Inner {
    map: HashMap<Arc<GraphKey>, CacheEntry>,
    /// Recency order: unique monotone tick -> key. Oldest tick evicts first.
    lru: BTreeMap<u64, Arc<GraphKey>>,
    tick: u64,
    bytes: usize,
}

fn cache() -> &'static Mutex<Inner> {
    static CACHE: OnceLock<Mutex<Inner>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(Inner::default()))
}

/// Per-entry bookkeeping overhead added to the vector payloads.
const ENTRY_OVERHEAD: usize = 128;

fn lookup(key: &GraphKey) -> Option<(Vec<u32>, Vec<u32>)> {
    let mut inner = cache().lock().expect("graph cache poisoned");
    inner.tick += 1;
    let tick = inner.tick;
    let entry = inner.map.get_mut(key)?;
    let old_tick = entry.tick;
    entry.tick = tick;
    let edges = (entry.src.clone(), entry.dst.clone());
    let arc = inner.lru.remove(&old_tick).expect("lru/map out of sync");
    inner.lru.insert(tick, arc);
    Some(edges)
}

fn insert(key: GraphKey, src: &[u32], dst: &[u32]) {
    let bytes = key.bytes() + (src.len() + dst.len()) * 4 + ENTRY_OVERHEAD;
    let budget = BUDGET.load(Ordering::Relaxed);
    if bytes > budget {
        return; // a single oversized structure would evict everything else
    }
    let mut inner = cache().lock().expect("graph cache poisoned");
    inner.tick += 1;
    let tick = inner.tick;
    let arc = Arc::new(key);
    let entry = CacheEntry {
        tick,
        src: src.to_vec(),
        dst: dst.to_vec(),
        bytes,
    };
    if let Some(old) = inner.map.insert(Arc::clone(&arc), entry) {
        inner.bytes -= old.bytes;
        inner.lru.remove(&old.tick);
    }
    inner.lru.insert(tick, arc);
    inner.bytes += bytes;
    while inner.bytes > budget {
        let (_, victim) = inner.lru.pop_first().expect("non-empty over budget");
        let gone = inner.map.remove(&victim).expect("lru/map out of sync");
        inner.bytes -= gone.bytes;
        GC_EVICTIONS.fetch_add(1, Ordering::Relaxed);
    }
}

fn cached(
    recipe: [u32; 3],
    species: Vec<u32>,
    positions: Vec<Vec3>,
    build: impl FnOnce(Vec<u32>, Vec<Vec3>) -> MaterialGraph,
) -> MaterialGraph {
    if !graph_cache_enabled() {
        return build(species, positions);
    }
    let key = GraphKey::new(recipe, &species, &positions);
    if let Some((src, dst)) = lookup(&key) {
        GC_HITS.fetch_add(1, Ordering::Relaxed);
        return MaterialGraph {
            species,
            positions,
            src,
            dst,
        };
    }
    GC_MISSES.fetch_add(1, Ordering::Relaxed);
    let graph = build(species, positions);
    insert(key, &graph.src, &graph.dst);
    graph
}

fn cap_code(max_neighbors: Option<usize>) -> u32 {
    match max_neighbors {
        None => u32::MAX,
        Some(n) => u32::try_from(n).unwrap_or(u32::MAX - 1),
    }
}

/// [`radius_graph`] through the cross-epoch cache.
///
/// Bit-identical to calling [`radius_graph`] directly: the key is the
/// exact bit pattern of every input, and construction is deterministic,
/// so a hit replays precisely the edges a rebuild would produce.
pub fn radius_graph_cached(
    species: Vec<u32>,
    positions: Vec<Vec3>,
    radius: f32,
    max_neighbors: Option<usize>,
) -> MaterialGraph {
    let recipe = [1, radius.to_bits(), cap_code(max_neighbors)];
    cached(recipe, species, positions, |s, p| {
        radius_graph(s, p, radius, max_neighbors)
    })
}

/// [`knn_graph`] through the cross-epoch cache (same contract as
/// [`radius_graph_cached`]).
pub fn knn_graph_cached(species: Vec<u32>, positions: Vec<Vec3>, k: usize) -> MaterialGraph {
    let recipe = [2, u32::try_from(k).unwrap_or(u32::MAX), 0];
    cached(recipe, species, positions, |s, p| knn_graph(s, p, k))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The cache, its counters, and the budget are process-global; tests
    /// that reset them must not interleave.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn structure(n: usize, seed: f32) -> (Vec<u32>, Vec<Vec3>) {
        let species: Vec<u32> = (0..n as u32).map(|i| i % 5).collect();
        let positions: Vec<Vec3> = (0..n)
            .map(|i| {
                let t = seed + i as f32 * 0.37;
                Vec3::new(t.sin() * 3.0, t.cos() * 3.0, (i as f32) * 0.21)
            })
            .collect();
        (species, positions)
    }

    /// Cache hits must replay exactly what a rebuild produces.
    #[test]
    fn hit_is_bit_identical_to_rebuild() {
        let _serial = serial();
        set_graph_cache(true);
        reset_graph_cache();
        let (species, positions) = structure(40, 0.0);
        let fresh = radius_graph(species.clone(), positions.clone(), 3.5, Some(8));
        let miss = radius_graph_cached(species.clone(), positions.clone(), 3.5, Some(8));
        let hit = radius_graph_cached(species, positions, 3.5, Some(8));
        assert_eq!(fresh.src, miss.src);
        assert_eq!(fresh.dst, miss.dst);
        assert_eq!(fresh.src, hit.src);
        assert_eq!(fresh.dst, hit.dst);
        let stats = graph_cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    /// Different recipe parameters must not alias to the same entry.
    #[test]
    fn recipe_params_are_part_of_the_key() {
        let _serial = serial();
        set_graph_cache(true);
        reset_graph_cache();
        let (species, positions) = structure(30, 1.0);
        let a = radius_graph_cached(species.clone(), positions.clone(), 2.0, Some(4));
        let b = radius_graph_cached(species.clone(), positions.clone(), 4.0, Some(4));
        let c = radius_graph_cached(species, positions, 4.0, None);
        assert_eq!(graph_cache_stats().misses, 3);
        assert!(a.num_edges() <= b.num_edges());
        assert!(b.num_edges() <= c.num_edges());
    }

    /// The byte budget bounds residency and evicts oldest-first.
    #[test]
    fn budget_evicts_least_recently_used() {
        let _serial = serial();
        set_graph_cache(true);
        reset_graph_cache();
        // Each 40-atom entry is ~1.6 KiB; a 4 KiB budget holds about two.
        set_graph_cache_budget(4 * 1024);
        for i in 0..4 {
            let (species, positions) = structure(40, i as f32);
            radius_graph_cached(species, positions, 3.5, Some(8));
        }
        let stats = graph_cache_stats();
        assert_eq!(stats.misses, 4);
        assert!(stats.evictions >= 2, "expected evictions, got {stats:?}");
        // The most recent structure should still be resident.
        let (species, positions) = structure(40, 3.0);
        radius_graph_cached(species, positions, 3.5, Some(8));
        assert_eq!(graph_cache_stats().hits, 1);
        set_graph_cache_budget(DEFAULT_GRAPH_CACHE_BUDGET);
    }

    /// Disabling the cache bypasses it entirely.
    #[test]
    fn disabled_cache_never_records() {
        let _serial = serial();
        set_graph_cache(false);
        reset_graph_cache();
        let (species, positions) = structure(20, 2.0);
        let a = radius_graph_cached(species.clone(), positions.clone(), 3.0, Some(6));
        let b = radius_graph_cached(species.clone(), positions.clone(), 3.0, Some(6));
        let fresh = radius_graph(species, positions, 3.0, Some(6));
        assert_eq!(a.src, fresh.src);
        assert_eq!(b.dst, fresh.dst);
        assert_eq!(graph_cache_stats(), GraphCacheStats::default());
        set_graph_cache(true);
    }

    /// Knn recipes get their own keyspace.
    #[test]
    fn knn_cached_matches_rebuild() {
        let _serial = serial();
        set_graph_cache(true);
        reset_graph_cache();
        let (species, positions) = structure(25, 4.0);
        let fresh = knn_graph(species.clone(), positions.clone(), 3);
        knn_graph_cached(species.clone(), positions.clone(), 3);
        let hit = knn_graph_cached(species, positions, 3);
        assert_eq!(fresh.src, hit.src);
        assert_eq!(fresh.dst, hit.dst);
        assert_eq!(graph_cache_stats().hits, 1);
    }
}
