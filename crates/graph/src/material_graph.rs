//! The core graph container.

use matsciml_tensor::Vec3;
use serde::{Deserialize, Serialize};

/// A directed graph over atoms, stored as parallel edge-index vectors.
///
/// Nodes carry a species index and a 3-D position; edges are directed
/// (`src[e] -> dst[e]`) and, for the symmetric constructions in
/// [`crate::radius_graph`] / [`crate::knn_graph`], come in both directions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MaterialGraph {
    /// Species index per node (row into the model's embedding table).
    pub species: Vec<u32>,
    /// Cartesian position per node.
    pub positions: Vec<Vec3>,
    /// Edge source node indices.
    pub src: Vec<u32>,
    /// Edge destination node indices.
    pub dst: Vec<u32>,
}

impl MaterialGraph {
    /// An edgeless graph over the given atoms. Panics unless `species` and
    /// `positions` have equal length.
    pub fn new(species: Vec<u32>, positions: Vec<Vec3>) -> Self {
        assert_eq!(
            species.len(),
            positions.len(),
            "species/positions length mismatch"
        );
        MaterialGraph {
            species,
            positions,
            src: Vec::new(),
            dst: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.species.len()
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.src.len()
    }

    /// Append a directed edge. Panics on out-of-range endpoints.
    pub fn add_edge(&mut self, src: u32, dst: u32) {
        let n = self.num_nodes() as u32;
        assert!(src < n && dst < n, "edge ({src},{dst}) out of range for {n} nodes");
        self.src.push(src);
        self.dst.push(dst);
    }

    /// Out-degree of every node.
    pub fn out_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_nodes()];
        for &s in &self.src {
            deg[s as usize] += 1;
        }
        deg
    }

    /// True when for every edge `(u, v)` the reverse `(v, u)` also exists.
    pub fn is_symmetric(&self) -> bool {
        use std::collections::HashSet;
        let set: HashSet<(u32, u32)> = self.src.iter().copied().zip(self.dst.iter().copied()).collect();
        set.iter().all(|&(u, v)| set.contains(&(v, u)))
    }

    /// Squared Euclidean length of every edge.
    pub fn edge_lengths_sq(&self) -> Vec<f32> {
        self.src
            .iter()
            .zip(&self.dst)
            .map(|(&s, &d)| (self.positions[s as usize] - self.positions[d as usize]).norm_sq())
            .collect()
    }

    /// Flatten positions into a `[n, 3]` row-major buffer (model input).
    pub fn positions_flat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_nodes() * 3);
        for p in &self.positions {
            out.extend_from_slice(&p.to_array());
        }
        out
    }

    /// Centroid of the node positions.
    pub fn centroid(&self) -> Vec3 {
        if self.positions.is_empty() {
            return Vec3::zero();
        }
        let mut c = Vec3::zero();
        for p in &self.positions {
            c = c + *p;
        }
        c * (1.0 / self.positions.len() as f32)
    }

    /// Translate every node so the centroid sits at the origin.
    pub fn center(&mut self) {
        let c = self.centroid();
        for p in &mut self.positions {
            *p = *p - c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri() -> MaterialGraph {
        let mut g = MaterialGraph::new(
            vec![0, 1, 2],
            vec![
                Vec3::new(0.0, 0.0, 0.0),
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.0, 2.0, 0.0),
            ],
        );
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(0, 2);
        g
    }

    #[test]
    fn construction_and_counts() {
        let g = tri();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_degrees(), vec![2, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_checks_bounds() {
        tri().add_edge(0, 3);
    }

    #[test]
    fn symmetry_detection() {
        let mut g = tri();
        assert!(!g.is_symmetric());
        g.add_edge(2, 0);
        assert!(g.is_symmetric());
    }

    #[test]
    fn edge_lengths_match_geometry() {
        let g = tri();
        let l = g.edge_lengths_sq();
        assert_eq!(l, vec![1.0, 1.0, 4.0]);
    }

    #[test]
    fn centering_moves_centroid_to_origin() {
        let mut g = tri();
        g.center();
        assert!(g.centroid().norm() < 1e-6);
    }

    #[test]
    fn positions_flat_is_row_major() {
        let g = tri();
        let flat = g.positions_flat();
        assert_eq!(flat.len(), 9);
        assert_eq!(&flat[3..6], &[1.0, 0.0, 0.0]);
    }
}
