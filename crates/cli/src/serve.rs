//! `matsciml serve` / `matsciml query` — the TCP property-prediction
//! server over the batched [`InferenceServer`] engine, plus its
//! line-protocol client.
//!
//! The wire protocol is newline-delimited JSON, one request and one
//! response per line, documented normatively in `docs/SERVING.md`:
//!
//! ```text
//! → {"id":1,"index":3}
//! ← {"id":1,"ok":true,"predictions":[[0.8132]],"error":null,"counters":null}
//! ```
//!
//! A connection may send any number of requests; each is answered in
//! order. `{"cmd":"stats"}` returns the server's counters,
//! `{"cmd":"reload","path":"new.mckpt"}` hot-swaps the served model
//! between batches, and `{"cmd":"shutdown"}` stops the server after
//! draining queued work.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use matsciml::obs::{Event, Json, RunStartEvent, SummaryEvent, SCHEMA};
use matsciml::prelude::*;
use serde::{Deserialize, Serialize};

use crate::args::Args;
use crate::commands::dataset_by_name;

/// One request line. Exactly one of `index`, `indices`, `structure`,
/// `structures`, or `cmd` should be set; `id` is echoed back verbatim.
#[derive(Deserialize, Serialize)]
struct WireRequest {
    /// Client correlation id, echoed in the response.
    #[serde(default)]
    id: Option<u64>,
    /// Predict one entry of the server's dataset.
    #[serde(default)]
    index: Option<usize>,
    /// Predict several dataset entries in one request.
    #[serde(default)]
    indices: Option<Vec<usize>>,
    /// Predict one client-supplied structure (`generate` JSON shape).
    #[serde(default)]
    structure: Option<Sample>,
    /// Predict several client-supplied structures.
    #[serde(default)]
    structures: Option<Vec<Sample>>,
    /// Control verb: `stats`, `reload`, or `shutdown`.
    #[serde(default)]
    cmd: Option<String>,
    /// Checkpoint path for `{"cmd":"reload"}`.
    #[serde(default)]
    path: Option<String>,
}

/// One response line.
#[derive(Deserialize, Serialize)]
struct WireResponse {
    id: Option<u64>,
    ok: bool,
    /// `[structure][out_dim]` rows, present on successful predictions.
    predictions: Option<Vec<Vec<f32>>>,
    error: Option<String>,
    /// Present on `{"cmd":"stats"}` responses.
    counters: Option<BTreeMap<String, u64>>,
}

impl WireResponse {
    fn ok(id: Option<u64>, predictions: Vec<Vec<f32>>) -> Self {
        WireResponse { id, ok: true, predictions: Some(predictions), error: None, counters: None }
    }

    fn err(id: Option<u64>, error: impl std::fmt::Display) -> Self {
        WireResponse { id, ok: false, predictions: None, error: Some(error.to_string()), counters: None }
    }
}

/// Serve-config snapshot embedded in the run record's `run_start` line.
#[derive(Serialize)]
struct ServeSnapshot {
    addr: String,
    dataset: String,
    size: usize,
    workers: usize,
    max_batch: usize,
    queue_cap: usize,
    head: usize,
    precision: String,
}

/// `matsciml serve` — load a model, bind a TCP address, serve batched
/// predictions until a client sends `{"cmd":"shutdown"}`.
pub fn cmd_serve(args: &Args) -> Result<(), String> {
    let ckpt_path = args.get("ckpt").map(str::to_string);
    let model_path = args.get("model").map(str::to_string);
    let addr = args.str_or("addr", "127.0.0.1:7878");
    let workers = args.num_or("workers", 2usize)?;
    let max_batch = args.num_or("max-batch", 16usize)?;
    let queue_cap = args.num_or("queue-cap", 64usize)?;
    let head = args.num_or("head", 0usize)?;
    let ds_name = args.str_or("dataset", "mp");
    let size = args.num_or("size", 512usize)?;
    let seed = args.num_or("seed", 0u64)?;
    let run_dir = args.get("run-dir").map(str::to_string);
    let precision_arg = args.str_or("precision", "f32");
    args.reject_unknown()?;
    let precision = Precision::parse(&precision_arg)
        .ok_or_else(|| format!("--precision: unknown precision `{precision_arg}` (f32|f16|bf16)"))?;

    let model = match (&ckpt_path, &model_path) {
        (Some(path), None) => {
            // Accepts full training checkpoints and quantized `PRMH`
            // inference artifacts alike.
            let loaded = load_infer_model(path).map_err(|e| e.to_string())?;
            match loaded.stored_precision {
                Some(p) => eprintln!("loaded quantized checkpoint {path} ({} storage)", p.name()),
                None => eprintln!("loaded training checkpoint {path}"),
            }
            loaded.model
        }
        (None, Some(path)) => {
            let m = TaskModel::load(path).map_err(|e| e.to_string())?;
            eprintln!("loaded model checkpoint {path}");
            m
        }
        (None, None) => return Err("pass --ckpt FILE.mckpt or --model FILE.json".into()),
        (Some(_), Some(_)) => return Err("--ckpt and --model are mutually exclusive".into()),
    };
    if head >= model.heads.len() {
        return Err(format!("--head {head} out of range: model has {} heads", model.heads.len()));
    }

    let obs = match &run_dir {
        Some(dir) => Obs::jsonl(std::path::Path::new(dir).join("serve.jsonl"))
            .map_err(|e| format!("cannot create run record in {dir}: {e}"))?,
        None => Obs::null(),
    };
    if obs.enabled() {
        obs.emit(&Event::run_start(RunStartEvent {
            schema: SCHEMA.to_string(),
            world_size: workers as u64,
            per_rank_batch: max_batch as u64,
            steps: 0,
            seed,
            config: Json::snapshot(&ServeSnapshot {
                addr: addr.clone(),
                dataset: ds_name.clone(),
                size,
                workers,
                max_batch,
                queue_cap,
                head,
                precision: precision.name().to_string(),
            })
            .unwrap_or_else(|_| Json::null()),
        }));
    }
    let t_run = obs.timer();

    let dataset: Arc<dyn Dataset> = Arc::from(dataset_by_name(&ds_name, size, seed)?);
    let server = Arc::new(InferenceServer::start(
        model,
        Compose::standard(4.5, Some(12)),
        Some(dataset),
        ServeConfig { workers, max_batch, queue_cap, head, precision, ..Default::default() },
        obs.clone(),
    ));

    let listener = TcpListener::bind(&addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    eprintln!(
        "serving on {addr} ({workers} workers, max batch {max_batch}, queue cap {queue_cap}, \
         {} inference) — stop with `matsciml-cli query --addr {addr} --shutdown`",
        precision.name()
    );

    let stop = Arc::new(AtomicBool::new(false));
    let mut handlers = Vec::new();
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let conn = match conn {
            Ok(c) => c,
            Err(e) => {
                eprintln!("accept failed: {e}");
                continue;
            }
        };
        let server = Arc::clone(&server);
        let stop = Arc::clone(&stop);
        let addr = addr.clone();
        handlers.push(std::thread::spawn(move || {
            if let Err(e) = handle_connection(conn, &server, &stop, &addr) {
                eprintln!("connection error: {e}");
            }
        }));
    }
    for h in handlers {
        let _ = h.join();
    }
    server.shutdown();

    if obs.enabled() {
        if let Some(rec) = obs.recorder() {
            let counters = rec.counters();
            obs.emit(&Event::summary(SummaryEvent {
                steps: counters.get("serve/requests").copied().unwrap_or(0),
                wall_time_us: matsciml::obs::Obs::lap_ns(t_run) / 1_000,
                stopped_early: false,
                skipped_updates: 0,
                spike_steps: Vec::new(),
                phases: rec.quantiles(),
                counters,
                final_val: BTreeMap::new(),
            }));
        }
        obs.flush();
    }
    if let Some(dir) = &run_dir {
        eprintln!("serve record: {dir}/serve.jsonl");
    }
    eprintln!("server stopped");
    Ok(())
}

/// Serve one client connection: requests in, responses out, line by line.
fn handle_connection(
    conn: TcpStream,
    server: &InferenceServer,
    stop: &AtomicBool,
    addr: &str,
) -> std::io::Result<()> {
    let reader = BufReader::new(conn.try_clone()?);
    let mut writer = conn;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (response, shutdown) = respond(&line, server);
        let json = serde_json::to_string(&response)
            .unwrap_or_else(|e| format!("{{\"ok\":false,\"error\":\"encode: {e}\"}}"));
        writer.write_all(json.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if shutdown {
            stop.store(true, Ordering::SeqCst);
            // Unblock the accept loop so it can observe the stop flag.
            let _ = TcpStream::connect(addr);
            break;
        }
    }
    Ok(())
}

/// Decode one request line and produce its response; the bool asks the
/// caller to begin server shutdown.
fn respond(line: &str, server: &InferenceServer) -> (WireResponse, bool) {
    let req: WireRequest = match serde_json::from_str(line) {
        Ok(r) => r,
        Err(e) => return (WireResponse::err(None, format!("malformed request: {e}")), false),
    };
    let id = req.id;
    match req {
        WireRequest { cmd: Some(cmd), path, .. } => match cmd.as_str() {
            "stats" => {
                let counters = server.obs().recorder().map(|r| r.counters()).unwrap_or_default();
                (
                    WireResponse { id, ok: true, predictions: None, error: None, counters: Some(counters) },
                    false,
                )
            }
            "reload" => match path {
                Some(path) => match server.reload(&path) {
                    Ok(()) => (
                        WireResponse { id, ok: true, predictions: None, error: None, counters: None },
                        false,
                    ),
                    Err(e) => (WireResponse::err(id, e), false),
                },
                None => (WireResponse::err(id, "reload needs a `path`"), false),
            },
            "shutdown" => (
                WireResponse { id, ok: true, predictions: None, error: None, counters: None },
                true,
            ),
            other => (WireResponse::err(id, format!("unknown cmd `{other}`")), false),
        },
        WireRequest { index: Some(i), .. } => match server.predict_indices(vec![i]) {
            Ok(rows) => (WireResponse::ok(id, rows), false),
            Err(e) => (WireResponse::err(id, e), false),
        },
        WireRequest { indices: Some(ix), .. } => match server.predict_indices(ix) {
            Ok(rows) => (WireResponse::ok(id, rows), false),
            Err(e) => (WireResponse::err(id, e), false),
        },
        WireRequest { structure: Some(s), .. } => match server.predict_samples(vec![s]) {
            Ok(rows) => (WireResponse::ok(id, rows), false),
            Err(e) => (WireResponse::err(id, e), false),
        },
        WireRequest { structures: Some(ss), .. } => match server.predict_samples(ss) {
            Ok(rows) => (WireResponse::ok(id, rows), false),
            Err(e) => (WireResponse::err(id, e), false),
        },
        _ => (
            WireResponse::err(id, "empty request: set index, indices, structure, structures, or cmd"),
            false,
        ),
    }
}

/// `matsciml query` — one-shot client for a running server.
pub fn cmd_query(args: &Args) -> Result<(), String> {
    let addr = args.str_or("addr", "127.0.0.1:7878");
    let index = args.get("index").map(str::to_string);
    let indices = args.get("indices").map(str::to_string);
    let file = args.get("file").map(str::to_string);
    let stats = args.flag("stats");
    let shutdown = args.flag("shutdown");
    let reload = args.get("reload").map(str::to_string);
    let id = args.num_or("id", 0u64)?;
    args.reject_unknown()?;

    let blank = WireRequest {
        id: Some(id),
        index: None,
        indices: None,
        structure: None,
        structures: None,
        cmd: None,
        path: None,
    };
    let request = if shutdown {
        WireRequest { cmd: Some("shutdown".into()), ..blank }
    } else if stats {
        WireRequest { cmd: Some("stats".into()), ..blank }
    } else if let Some(path) = reload {
        WireRequest { cmd: Some("reload".into()), path: Some(path), ..blank }
    } else if let Some(i) = index {
        let i: usize = i.parse().map_err(|_| format!("--index: cannot parse `{i}`"))?;
        WireRequest { index: Some(i), ..blank }
    } else if let Some(list) = indices {
        let ix = list
            .split(',')
            .map(|t| t.trim().parse::<usize>().map_err(|_| format!("--indices: cannot parse `{t}`")))
            .collect::<Result<Vec<_>, _>>()?;
        WireRequest { indices: Some(ix), ..blank }
    } else if let Some(path) = file {
        // One JSON structure per line, the `generate` output shape.
        let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
        let structures = text
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| serde_json::from_str::<Sample>(l).map_err(|e| format!("{path}: {e}")))
            .collect::<Result<Vec<_>, _>>()?;
        WireRequest { structures: Some(structures), ..blank }
    } else {
        return Err(
            "pass --index N, --indices A,B,C, --file FILE.jsonl, --reload CKPT, --stats, or --shutdown"
                .into(),
        );
    };

    let stream = TcpStream::connect(&addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let json = serde_json::to_string(&request).map_err(|e| e.to_string())?;
    writer.write_all(json.as_bytes()).map_err(|e| e.to_string())?;
    writer.write_all(b"\n").map_err(|e| e.to_string())?;
    writer.flush().map_err(|e| e.to_string())?;

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| e.to_string())?;
    if line.is_empty() {
        return Err("server closed the connection without responding".into());
    }
    // Echo the raw response line: it is already the documented JSON shape.
    println!("{}", line.trim_end());
    let response: WireResponse = serde_json::from_str(&line).map_err(|e| e.to_string())?;
    if response.ok {
        Ok(())
    } else {
        Err(response.error.unwrap_or_else(|| "request failed".into()))
    }
}
