//! `matsciml` — command-line front-end for the toolkit.

mod args;
mod commands;
mod serve;

use args::Args;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let result = match args.positional(0) {
        Some("info") => commands::cmd_info(&args),
        Some("groups") => commands::cmd_groups(&args),
        Some("generate") => commands::cmd_generate(&args),
        Some("shard-write") => commands::cmd_shard_write(&args),
        Some("quantize") => commands::cmd_quantize(&args),
        Some("train") => commands::cmd_train(&args),
        Some("embed") => commands::cmd_embed(&args),
        Some("serve") => serve::cmd_serve(&args),
        Some("query") => serve::cmd_query(&args),
        Some("bench") => commands::cmd_bench(&args),
        Some("help") | None => {
            commands::usage(&mut std::io::stdout());
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}` (try `matsciml help`)")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
