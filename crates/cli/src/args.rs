//! A small dependency-free flag parser for the CLI.
//!
//! Supports `--key value`, `--key=value`, bare positionals, and typed
//! accessors with defaults. Unknown flags are collected and reported so
//! typos fail loudly instead of silently using defaults.

use std::collections::BTreeMap;

/// Parsed command-line arguments: positionals plus `--key value` flags.
#[derive(Debug, Default)]
pub struct Args {
    positionals: Vec<String>,
    flags: BTreeMap<String, String>,
    consumed: std::cell::RefCell<Vec<String>>,
}

impl Args {
    /// Parse from an iterator of raw arguments (excluding `argv[0]`).
    pub fn parse(raw: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut positionals = Vec::new();
        let mut flags = BTreeMap::new();
        let mut iter = raw.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(stripped) = arg.strip_prefix("--") {
                if stripped.is_empty() {
                    return Err("stray `--`".into());
                }
                if let Some((k, v)) = stripped.split_once('=') {
                    flags.insert(k.to_string(), v.to_string());
                } else {
                    // `--flag value` or boolean `--flag`.
                    match iter.peek() {
                        Some(next) if !next.starts_with("--") => {
                            let v = iter.next().expect("peeked");
                            flags.insert(stripped.to_string(), v);
                        }
                        _ => {
                            flags.insert(stripped.to_string(), "true".to_string());
                        }
                    }
                }
            } else {
                positionals.push(arg);
            }
        }
        Ok(Args {
            positionals,
            flags,
            consumed: Default::default(),
        })
    }

    /// Positional argument `i`.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(String::as_str)
    }

    /// Raw flag value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.consumed.borrow_mut().push(key.to_string());
        self.flags.get(key).map(String::as_str)
    }

    /// String flag with default.
    pub fn str_or(&self, key: &str, default: &str) -> String {
        self.get(key).unwrap_or(default).to_string()
    }

    /// Typed flag with default; errors on unparseable values.
    pub fn num_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse `{v}`")),
        }
    }

    /// Boolean flag (present or `--key true/false`).
    pub fn flag(&self, key: &str) -> bool {
        matches!(self.get(key), Some("true") | Some("1") | Some("yes"))
    }

    /// Error on any flag that no accessor ever looked at (catches typos).
    pub fn reject_unknown(&self) -> Result<(), String> {
        let seen = self.consumed.borrow();
        let unknown: Vec<&String> = self
            .flags
            .keys()
            .filter(|k| !seen.contains(k))
            .collect();
        if unknown.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "unknown flag(s): {}",
                unknown
                    .iter()
                    .map(|k| format!("--{k}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Args {
        Args::parse(s.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn positionals_and_flags() {
        let a = parse(&["train", "--steps", "100", "--lr=0.001", "--verbose"]);
        assert_eq!(a.positional(0), Some("train"));
        assert_eq!(a.num_or("steps", 0u64).unwrap(), 100);
        assert_eq!(a.num_or("lr", 0.0f32).unwrap(), 0.001);
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn defaults_apply_when_missing() {
        let a = parse(&["x"]);
        assert_eq!(a.num_or("steps", 42u64).unwrap(), 42);
        assert_eq!(a.str_or("out", "default.csv"), "default.csv");
    }

    #[test]
    fn bad_number_is_an_error() {
        let a = parse(&["--steps", "many"]);
        assert!(a.num_or("steps", 0u64).is_err());
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let a = parse(&["--stesp", "100"]);
        let _ = a.num_or("steps", 0u64);
        let err = a.reject_unknown().unwrap_err();
        assert!(err.contains("--stesp"));
    }

    #[test]
    fn consumed_flags_pass_rejection() {
        let a = parse(&["--steps", "100"]);
        let _ = a.num_or("steps", 0u64);
        assert!(a.reject_unknown().is_ok());
    }

    #[test]
    fn negative_numbers_as_values() {
        let a = parse(&["--offset=-3.5"]);
        assert_eq!(a.num_or("offset", 0.0f32).unwrap(), -3.5);
    }
}
