//! CLI subcommand implementations.

use std::io::Write;

use matsciml::datasets::elements;
use matsciml::prelude::*;

use crate::args::Args;

/// Build a dataset by CLI name.
pub fn dataset_by_name(name: &str, size: usize, seed: u64) -> Result<Box<dyn Dataset>, String> {
    Ok(match name {
        "mp" | "materials-project" => Box::new(SyntheticMaterialsProject::new(size, seed)),
        "cmd" | "carolina" => Box::new(SyntheticCarolina::new(size, seed)),
        "oc20" => Box::new(SyntheticOc20::new(size, seed)),
        "oc22" => Box::new(SyntheticOc22::new(size, seed)),
        "lips" => Box::new(SyntheticLips::new(size, seed)),
        "symmetry" | "sym" => Box::new(SymmetryDataset::new(size, seed)),
        other => return Err(format!("unknown dataset `{other}` (mp|cmd|oc20|oc22|lips|symmetry)")),
    })
}

/// Target selector by CLI name (with its natural loss).
pub fn target_by_name(name: &str) -> Result<TargetKind, String> {
    Ok(match name {
        "band_gap" | "gap" => TargetKind::BandGap,
        "fermi" => TargetKind::FermiEnergy,
        "e_form" | "formation_energy" => TargetKind::FormationEnergy,
        "stability" | "stable" => TargetKind::Stability,
        "energy" => TargetKind::Energy,
        "sym" | "symmetry" => TargetKind::SymmetryLabel,
        other => {
            return Err(format!(
                "unknown target `{other}` (band_gap|fermi|e_form|stability|energy|sym)"
            ))
        }
    })
}

/// `matsciml groups` — list the 32 crystallographic point groups.
pub fn cmd_groups(args: &Args) -> Result<(), String> {
    args.reject_unknown()?;
    println!("{:<6} {:>5}  example elements", "name", "order");
    for g in all_point_groups() {
        let improper = g.ops.iter().filter(|o| o.det() < 0.0).count();
        println!(
            "{:<6} {:>5}  {} proper / {} improper operations",
            g.name,
            g.order(),
            g.order() - improper,
            improper
        );
    }
    Ok(())
}

/// `matsciml info` — toolkit summary.
pub fn cmd_info(args: &Args) -> Result<(), String> {
    args.reject_unknown()?;
    println!("Open MatSci ML Toolkit (Rust reproduction)");
    println!("  species vocabulary : {} elements", elements::NUM_SPECIES);
    println!("  point groups       : {}", all_point_groups().len());
    println!("  datasets           : mp, cmd, oc20, oc22, lips, symmetry");
    println!("  encoders           : egnn (default), mpnn, attention");
    println!(
        "  prototypes         : {}",
        matsciml::datasets::ALL_PROTOTYPES()
            .iter()
            .map(|p| p.name)
            .collect::<Vec<_>>()
            .join(", ")
    );
    Ok(())
}

/// `matsciml generate <dataset>` — dump samples as JSON lines.
pub fn cmd_generate(args: &Args) -> Result<(), String> {
    let name = args.positional(1).ok_or("usage: matsciml generate <dataset> [--size N] [--seed S] [--out FILE]")?;
    let size = args.num_or("size", 16usize)?;
    let seed = args.num_or("seed", 0u64)?;
    let out = args.str_or("out", "-");
    let ds = dataset_by_name(name, size, seed)?;
    args.reject_unknown()?;

    let mut buffer = String::new();
    for i in 0..size {
        let s = ds.sample(i);
        buffer.push_str(&serde_json::to_string(&s).map_err(|e| e.to_string())?);
        buffer.push('\n');
    }
    if out == "-" {
        print!("{buffer}");
    } else {
        std::fs::write(&out, buffer).map_err(|e| e.to_string())?;
        eprintln!("wrote {size} samples to {out}");
    }
    Ok(())
}

/// `matsciml shard-write` — convert a synthetic generator or a `.jsonl`
/// export into a sharded corpus directory (`manifest.json` + `.mshard`
/// files per `docs/SHARD_FORMAT.md`) that `train --data-dir` streams
/// without materializing an epoch.
///
/// `--precompute-edges` runs the training transform pipeline (center +
/// radius graph, `--radius`/`--max-neighbors`, defaulting to the values
/// `train` uses) at corpus-build time: the shards then carry edge arrays
/// (the format's `F_EDGES` codec flag) and the streaming loader skips
/// graph construction entirely. With `--verify` on top, a sampled subset
/// of stored records is cross-checked against a fresh `radius_graph`
/// rebuild after writing.
pub fn cmd_shard_write(args: &Args) -> Result<(), String> {
    let out = args
        .get("out")
        .ok_or("usage: matsciml shard-write --out DIR [--dataset D --size N --seed S | --from FILE.jsonl] [--shard-samples K] [--precompute-edges [--radius R --max-neighbors M]] [--verify]")?
        .to_string();
    let ds_name = args.str_or("dataset", "mp");
    let size = args.num_or("size", 4096usize)?;
    let seed = args.num_or("seed", 0u64)?;
    let from = args.get("from").map(str::to_string);
    let shard_samples = args.num_or("shard-samples", CorpusWriteOptions::default().shard_samples)?;
    let verify = args.flag("verify");
    let workers = args.num_or("write-workers", 1usize)?;
    let precompute = args.flag("precompute-edges");
    // Defaults match cmd_train's Compose::standard(4.5, Some(12)) so a
    // flagless precomputed corpus trains bit-identically to a raw one.
    let radius = args.num_or("radius", 4.5f32)?;
    let max_neighbors = args.num_or("max-neighbors", 12usize)?;
    let verify_samples = args.num_or("verify-samples", 64usize)?;
    args.reject_unknown()?;
    if workers == 0 {
        return Err("--write-workers must be at least 1".into());
    }
    let options = CorpusWriteOptions { shard_samples, verify, workers };
    let pipeline = precompute.then(|| Compose::standard(radius, Some(max_neighbors)));
    let transform = |s: Sample| match &pipeline {
        Some(p) => p.apply(s),
        None => s,
    };

    let manifest = match &from {
        Some(path) => {
            // Stream the .jsonl through one shard at a time — the
            // conversion never holds more than a shard in memory, so
            // MPtrj-scale exports convert in bounded space.
            let mut parse_err: Option<String> = None;
            let samples = JsonlStream::open(path)
                .map_err(|e| e.to_string())?
                .map_while(|r| match r {
                    Ok(s) => Some(s),
                    Err(e) => {
                        parse_err = Some(e.to_string());
                        None
                    }
                })
                .map(transform);
            let result = write_corpus_iter(samples, &out, options);
            // A parse failure trumps whatever the truncated write did
            // (including its "empty corpus" complaint on line-1 errors).
            if let Some(e) = parse_err {
                return Err(e);
            }
            result.map_err(|e| e.to_string())?
        }
        None => {
            let ds = dataset_by_name(&ds_name, size, seed)?;
            if precompute {
                let samples = (0..ds.len()).map(|i| transform(ds.sample(i)));
                write_corpus_iter(samples, &out, options).map_err(|e| e.to_string())?
            } else {
                write_corpus(ds.as_ref(), &out, options).map_err(|e| e.to_string())?
            }
        }
    };
    let bytes: u64 = manifest.shards.iter().map(|s| s.bytes).sum();
    let mut cross_checked = 0usize;
    if precompute && verify {
        // CRC told us the bytes round-trip; this tells us the *edges* in
        // those bytes are what a fresh graph build would produce.
        let graph_stage = GraphTransform::radius(radius, Some(max_neighbors));
        cross_checked = verify_precomputed_edges(&out, &graph_stage, verify_samples)
            .map_err(|e| e.to_string())?;
    }
    eprintln!(
        "wrote {} samples ({} dataset) into {} shard(s), {:.1} MiB total, at {out}{}{}",
        manifest.total_samples,
        manifest.dataset,
        manifest.shards.len(),
        bytes as f64 / (1024.0 * 1024.0),
        if precompute { " (edges precomputed)" } else { "" },
        if verify {
            if cross_checked > 0 {
                format!(" (CRC-verified; {cross_checked} records edge-checked)")
            } else {
                " (CRC-verified)".to_string()
            }
        } else {
            String::new()
        }
    );
    Ok(())
}

/// `matsciml quantize` — convert a checkpoint into a reduced-precision
/// inference artifact: a `matsciml-ckpt/v1` file whose parameters live
/// in a `PRMH` section as f16/bf16 bit patterns
/// (docs/CHECKPOINT_FORMAT.md). The output is what `serve --ckpt`
/// loads for the reduced-precision tier; it is not resumable for
/// training.
pub fn cmd_quantize(args: &Args) -> Result<(), String> {
    let ckpt_path = args.get("ckpt").map(str::to_string);
    let model_path = args.get("model").map(str::to_string);
    let out = args
        .get("out")
        .ok_or("usage: matsciml quantize --ckpt IN.mckpt|--model IN.json --out OUT.mckpt [--precision f16|bf16]")?
        .to_string();
    let precision_arg = args.str_or("precision", "f16");
    args.reject_unknown()?;
    let precision = Precision::parse(&precision_arg)
        .ok_or_else(|| format!("--precision: unknown precision `{precision_arg}` (f16|bf16)"))?;

    let (model, in_bytes) = match (&ckpt_path, &model_path) {
        (Some(path), None) => {
            let loaded = load_infer_model(path).map_err(|e| e.to_string())?;
            let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
            (loaded.model, bytes)
        }
        (None, Some(path)) => {
            let m = TaskModel::load(path).map_err(|e| e.to_string())?;
            let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
            (m, bytes)
        }
        _ => return Err("pass exactly one of --ckpt FILE.mckpt or --model FILE.json".into()),
    };

    let out_bytes = save_quantized_checkpoint(&out, &model, precision).map_err(|e| e.to_string())?;
    // Re-read the artifact: proves round-trip and surfaces the stored
    // per-tensor quantization errors.
    let back = load_infer_model(&out).map_err(|e| e.to_string())?;
    let worst = back.max_abs_errors.iter().cloned().fold(0.0f32, f32::max);
    eprintln!(
        "wrote {out}: {} params in {} storage, {out_bytes} bytes (input {in_bytes}), \
         worst per-scalar quantization error {worst:.3e}",
        model.params.len(),
        precision.name(),
    );
    Ok(())
}

/// `matsciml train` — single-task training run.
pub fn cmd_train(args: &Args) -> Result<(), String> {
    let ds_name = args.str_or("dataset", "mp");
    let target_name = args.str_or("target", "band_gap");
    let size = args.num_or("size", 512usize)?;
    let seed = args.num_or("seed", 0u64)?;
    let steps = args.num_or("steps", 100u64)?;
    let hidden = args.num_or("hidden", 16usize)?;
    let world = args.num_or("world", 2usize)?;
    let per_rank = args.num_or("batch", 8usize)?;
    let lr = args.num_or("lr", 1e-3f32)?;
    let save = args.get("save").map(str::to_string);
    // --constant-lr disables the Goyal world-size scaling rule.
    let constant_lr = args.flag("constant-lr");
    // --from FILE trains on a JSON-lines dataset exported by `generate`.
    let from = args.get("from").map(str::to_string);
    // --data-dir DIR streams a sharded corpus written by `shard-write`
    // (docs/SHARD_FORMAT.md) instead of materializing the dataset.
    let data_dir = args.get("data-dir").map(str::to_string);
    // Multi-shard read-ahead: N loader threads decoding --readahead-depth
    // batches ahead of the optimizer (MATSCIML_READAHEAD=0 falls back to
    // synchronous loads without changing the trajectory).
    let readahead = args.num_or("readahead", 0usize)?;
    let readahead_depth = args.num_or("readahead-depth", 0usize)?;
    // --shuffle-block B shuffles shard-sized blocks, then within each
    // block, keeping epoch order deterministic while preserving locality.
    let shuffle_block = args.num_or("shuffle-block", 0usize)?;
    // --run-dir DIR writes the JSONL run record (docs/RUN_RECORD.md) plus
    // the CSV training log there; --trace prints a phase-timing summary
    // (works alone via the no-op sink, no artifact written).
    let run_dir = args.get("run-dir").map(str::to_string);
    let trace = args.flag("trace");
    // Mid-run checkpointing (docs/CHECKPOINT_FORMAT.md): write
    // `stepN.mckpt` into --ckpt-dir every --ckpt-every steps; --resume
    // restarts a run from such a file, bit-identically.
    let ckpt_every = args.num_or("ckpt-every", 0u64)?;
    let ckpt_dir = args.get("ckpt-dir").map(str::to_string);
    let resume = args.get("resume").map(str::to_string);
    args.reject_unknown()?;
    if ckpt_every > 0 && ckpt_dir.is_none() {
        return Err("--ckpt-every needs --ckpt-dir DIR".into());
    }
    if from.is_some() && data_dir.is_some() {
        return Err("--from and --data-dir are mutually exclusive".into());
    }

    let ds: Box<dyn Dataset> = match (&from, &data_dir) {
        (Some(path), _) => Box::new(JsonlDataset::open(path).map_err(|e| e.to_string())?),
        (None, Some(dir)) => {
            let streaming = StreamingDataset::open(dir).map_err(|e| e.to_string())?;
            eprintln!(
                "streaming {} samples from {} shard(s) at {dir}",
                streaming.len(),
                streaming.num_shards()
            );
            Box::new(streaming)
        }
        (None, None) => dataset_by_name(&ds_name, size, seed)?,
    };
    let pipeline = Compose::standard(4.5, Some(12));
    let shuffle = if shuffle_block > 0 {
        ShuffleMode::Blocked(shuffle_block)
    } else {
        ShuffleMode::Global
    };

    if let Some(path) = &resume {
        // Resume branch: model + config + optimizer state all come from
        // the checkpoint; the CLI dataset flags must describe the same
        // data the original run saw (the schedule is derived from the
        // checkpointed seed). --steps is the new total step budget.
        let ckpt = TrainCheckpoint::load(path).map_err(|e| e.to_string())?;
        let mut cfg = ckpt.config.clone();
        eprintln!(
            "resuming {path} at step {} (original budget {}, new budget {steps})",
            ckpt.progress.step, cfg.steps
        );
        cfg.steps = steps;
        cfg.checkpoint_every = ckpt_every;
        cfg.checkpoint_dir = ckpt_dir.clone();
        // Read-ahead is an execution detail, not part of the trajectory,
        // so the resumed run may pick its own loader concurrency.
        cfg.readahead_threads = readahead;
        cfg.readahead_depth = readahead_depth;
        let batch = cfg.world_size * cfg.per_rank_batch;
        let train_dl =
            DataLoader::new(ds.as_ref(), Some(&pipeline), Split::Train, 0.2, batch, cfg.seed)
                .with_shuffle_mode(shuffle);
        let val_dl =
            DataLoader::new(ds.as_ref(), Some(&pipeline), Split::Val, 0.2, 32.min(batch), cfg.seed);
        let obs = train_obs(&run_dir, trace)?;
        let trainer = Trainer::new(cfg);
        let (model, log) = trainer.resume_observed(ckpt, &train_dl, Some(&val_dl), &obs);
        return report_train(&log, &model, &run_dir, trace, &obs, &save);
    }

    let target = target_by_name(&target_name)?;
    let batch = world * per_rank;
    let train_dl = DataLoader::new(ds.as_ref(), Some(&pipeline), Split::Train, 0.2, batch, seed)
        .with_shuffle_mode(shuffle);
    let val_dl = DataLoader::new(ds.as_ref(), Some(&pipeline), Split::Val, 0.2, 32.min(batch), seed);

    let head = match target {
        TargetKind::Stability => TaskHeadConfig::binary(ds.sample(0).dataset, target, 2 * hidden, 3),
        TargetKind::SymmetryLabel => TaskHeadConfig::symmetry(2 * hidden, 3, 32),
        _ => {
            let cfg = TaskHeadConfig::regression(ds.sample(0).dataset, target, 2 * hidden, 3);
            match target_stats(ds.as_ref(), target, 256) {
                Some((mu, sigma)) => cfg.with_normalization(mu, sigma),
                None => cfg,
            }
        }
    };
    let mut model = TaskModel::egnn(EgnnConfig::small(hidden), &[head], seed);
    eprintln!(
        "training {} / {} for {steps} steps (N={world}, B={per_rank}, {} params)",
        ds_name,
        target_name,
        model.params.num_scalars()
    );
    let trainer = Trainer::new(TrainConfig {
        world_size: world,
        per_rank_batch: per_rank,
        steps,
        base_lr: lr,
        scale_lr_by_world: !constant_lr,
        eval_every: (steps / 10).max(1),
        clip_norm: Some(10.0),
        seed,
        checkpoint_every: ckpt_every,
        checkpoint_dir: ckpt_dir.clone(),
        readahead_threads: readahead,
        readahead_depth,
        ..Default::default()
    });
    let obs = train_obs(&run_dir, trace)?;
    let log = trainer.train_observed(&mut model, &train_dl, Some(&val_dl), &obs);
    report_train(&log, &model, &run_dir, trace, &obs, &save)
}

/// The training observability handle: a JSONL run record under
/// `--run-dir`, the aggregating no-op sink under `--trace`, else nothing.
fn train_obs(run_dir: &Option<String>, trace: bool) -> Result<Obs, String> {
    match run_dir {
        Some(dir) => Obs::jsonl(std::path::Path::new(dir).join("run.jsonl"))
            .map_err(|e| format!("cannot create run record in {dir}: {e}")),
        None if trace => Ok(Obs::null()),
        None => Ok(Obs::disabled()),
    }
}

/// Post-run reporting shared by the fresh-run and resume paths of
/// [`cmd_train`]: eval table, run-record artifacts, trace summary, and
/// the optional JSON model checkpoint.
fn report_train(
    log: &TrainLog,
    model: &TaskModel,
    run_dir: &Option<String>,
    trace: bool,
    obs: &Obs,
    save: &Option<String>,
) -> Result<(), String> {
    for r in log.records.iter().filter(|r| r.val.is_some()) {
        println!(
            "step {:>5}  lr {:.2e}  train {}  |  val {}",
            r.step,
            r.lr,
            r.train.render(),
            r.val.as_ref().unwrap().render()
        );
    }
    if let Some(dir) = run_dir {
        log.write_csv(std::path::Path::new(dir).join("train.csv"))
            .map_err(|e| e.to_string())?;
        eprintln!("run record: {dir}/run.jsonl  csv: {dir}/train.csv");
    }
    if trace {
        if let Some(rec) = obs.recorder() {
            eprintln!("phase timings (µs per step):");
            eprintln!("  {:<22} {:>10} {:>10} {:>10} {:>10}", "phase", "p50", "p95", "p99", "mean");
            for (name, q) in rec.quantiles() {
                eprintln!(
                    "  {:<22} {:>10.0} {:>10.0} {:>10.0} {:>10.0}",
                    name, q.p50, q.p95, q.p99, q.mean
                );
            }
            for (name, v) in rec.counters() {
                eprintln!("  {name:<22} {v}");
            }
        }
    }
    if let Some(path) = save {
        model.save(path).map_err(|e| e.to_string())?;
        eprintln!("saved full model checkpoint to {path}");
    }
    Ok(())
}

/// `matsciml embed` — encoder embeddings to CSV.
pub fn cmd_embed(args: &Args) -> Result<(), String> {
    let ds_name = args.str_or("dataset", "mp");
    let count = args.num_or("count", 64usize)?;
    let seed = args.num_or("seed", 0u64)?;
    let hidden = args.num_or("hidden", 16usize)?;
    let out = args.str_or("out", "-");
    let load = args.get("load").map(str::to_string);
    args.reject_unknown()?;

    let ds = dataset_by_name(&ds_name, count, seed)?;
    let model = match load {
        Some(path) => {
            let m = TaskModel::load(&path).map_err(|e| e.to_string())?;
            eprintln!("loaded model checkpoint from {path}");
            m
        }
        None => TaskModel::egnn(
            EgnnConfig::small(hidden),
            &[TaskHeadConfig::symmetry(2 * hidden, 1, 32)],
            seed,
        ),
    };
    let pipeline = Compose::standard(4.5, Some(12));
    let samples: Vec<Sample> = (0..count).map(|i| pipeline.apply(ds.sample(i))).collect();
    let emb = model.embed(&samples);

    let mut csv = String::new();
    for r in 0..emb.rows() {
        let row: Vec<String> = emb.row(r).iter().map(|v| v.to_string()).collect();
        csv.push_str(&row.join(","));
        csv.push('\n');
    }
    if out == "-" {
        print!("{csv}");
    } else {
        std::fs::write(&out, csv).map_err(|e| e.to_string())?;
        eprintln!("wrote {} x {} embeddings to {out}", emb.rows(), emb.cols());
    }
    Ok(())
}

/// `matsciml bench` — quick single-rank throughput probe.
pub fn cmd_bench(args: &Args) -> Result<(), String> {
    let hidden = args.num_or("hidden", 24usize)?;
    let batch = args.num_or("batch", 32usize)?;
    args.reject_unknown()?;
    let ds = SymmetryDataset::new(256, 0);
    let pipeline = Compose::standard(1.2, Some(16));
    let dl = DataLoader::new(&ds, Some(&pipeline), Split::Train, 0.0, batch, 0);
    let samples = dl.load(&(0..batch).collect::<Vec<_>>());
    let model = TaskModel::egnn(
        EgnnConfig::small(hidden),
        &[TaskHeadConfig::symmetry(2 * hidden, 3, 32)],
        0,
    );
    let cost = throughput::measure_rank_cost(&model, &samples, 7);
    println!(
        "per-rank step (B={batch}, hidden {hidden}): {:.2} ms → {:.0} samples/s/rank",
        cost.step_seconds * 1e3,
        batch as f64 / cost.step_seconds
    );
    println!("gradient payload: {} KiB", cost.grad_bytes / 1024);
    let model = throughput::ThroughputModel {
        cost,
        net: throughput::Interconnect::hdr200(),
    };
    for n in [16usize, 64, 256, 512] {
        let p = model.at(n, 2_000_000);
        println!(
            "  N={n:>4}: {:>10.0} samples/s, 2M-sample epoch in {:.1} min",
            p.samples_per_sec,
            p.epoch_seconds / 60.0
        );
    }
    Ok(())
}

/// Print top-level usage.
pub fn usage(out: &mut impl Write) {
    let _ = writeln!(
        out,
        "matsciml-cli — Open MatSci ML Toolkit (Rust reproduction)

USAGE: matsciml-cli <command> [flags]

COMMANDS:
  info                      toolkit summary
  groups                    list the 32 crystallographic point groups
  generate <dataset>        emit samples as JSON lines
      --size N --seed S --out FILE
  shard-write               write a sharded streaming corpus (docs/SHARD_FORMAT.md)
      --out DIR  (required; writes manifest.json + shard-NNNNN.mshard)
      --dataset D --size N --seed S | --from FILE.jsonl
      --shard-samples K --verify --write-workers N
      --precompute-edges  (store the training graph in the shards so the
                      streaming loader skips graph construction;
                      --radius R --max-neighbors M, defaults 4.5/12 match
                      `train`; with --verify, --verify-samples records
                      are cross-checked against a fresh rebuild)
  train                     train a single-task model
      --dataset mp|cmd|oc20|oc22|lips|symmetry --target band_gap|fermi|e_form|stability|energy|sym
      --steps N --hidden H --world N --batch B --lr LR --save FILE --constant-lr
      --from FILE.jsonl  (train on a dataset exported by `generate`)
      --data-dir DIR     (stream a corpus written by `shard-write`)
      --readahead N --readahead-depth D  (N loader threads decoding D
                      batches ahead; MATSCIML_READAHEAD=0 disables)
      --shuffle-block B  (shard-local shuffle: blocks of B, then within)
      --run-dir DIR  (write run.jsonl per docs/RUN_RECORD.md + train.csv)
      --trace        (print per-phase timing quantiles after the run)
      --ckpt-every N --ckpt-dir DIR  (write stepN.mckpt checkpoints,
                      docs/CHECKPOINT_FORMAT.md)
      --resume FILE.mckpt  (continue a checkpointed run bit-identically;
                      --steps is the new total budget)
  embed                     encoder embeddings as CSV
      --dataset D --count N --hidden H --load CHECKPOINT --out FILE
  quantize                  write a reduced-precision inference artifact
      --ckpt IN.mckpt | --model IN.json --out OUT.mckpt
      --precision f16|bf16  (PRMH section, docs/CHECKPOINT_FORMAT.md)
  serve                     batched property-prediction server (docs/SERVING.md)
      --ckpt FILE.mckpt | --model FILE.json   (what to serve; accepts
                      `quantize` artifacts)
      --addr HOST:PORT --workers N --max-batch B --queue-cap Q --head H
      --precision f32|f16|bf16  (reduced-precision inference tier)
      --dataset D --size N --seed S  (dataset behind index requests)
      --run-dir DIR  (write serve.jsonl run record)
  query                     client for a running `serve`
      --addr HOST:PORT --index N | --indices A,B,C | --file FILE.jsonl
      --reload CKPT | --stats | --shutdown
  bench                     quick throughput probe
      --hidden H --batch B"
    );
}
