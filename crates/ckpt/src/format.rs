//! The `matsciml-ckpt/v1` container: magic, version, tagged sections,
//! trailing CRC-32. See `docs/CHECKPOINT_FORMAT.md` for the normative
//! byte-level spec this module implements.

use std::fmt;
use std::path::Path;

/// File magic: a non-ASCII lead byte (catches text-mode mangling and
/// foreign files immediately) followed by `MCKPT` and a CRLF pair
/// (catches newline translation), in the spirit of the PNG signature.
pub const MAGIC: [u8; 8] = [0x89, b'M', b'C', b'K', b'P', b'T', 0x0D, 0x0A];

/// Current (and only) container format version.
pub const VERSION: u32 = 1;

/// Every defect a checkpoint file can exhibit, as a typed error. Corrupt
/// or foreign input must land in one of these variants — decoding never
/// panics.
#[derive(Debug)]
pub enum CkptError {
    /// Filesystem failure while reading or writing.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`] — not a checkpoint.
    BadMagic,
    /// The file declares a container version this reader cannot parse.
    UnsupportedVersion(u32),
    /// The file ends before its declared structure does.
    Truncated {
        /// What the reader was parsing when the bytes ran out.
        context: &'static str,
    },
    /// The trailing CRC-32 does not match the file contents.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u32,
        /// Checksum computed over the file contents.
        computed: u32,
    },
    /// A required section is absent.
    MissingSection(&'static str),
    /// Structurally invalid content inside an otherwise intact file.
    Malformed(String),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CkptError::BadMagic => write!(f, "not a matsciml-ckpt file (bad magic)"),
            CkptError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v} (reader supports {VERSION})")
            }
            CkptError::Truncated { context } => {
                write!(f, "checkpoint truncated while reading {context}")
            }
            CkptError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            CkptError::MissingSection(tag) => {
                write!(f, "checkpoint is missing required section `{tag}`")
            }
            CkptError::Malformed(msg) => write!(f, "malformed checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        CkptError::Io(e)
    }
}

/// CRC-32 (IEEE 802.3): reflected polynomial `0xEDB88320`, initial value
/// `0xFFFFFFFF`, final XOR `0xFFFFFFFF` — the same parameterization as
/// zlib/PNG, so third-party tooling can verify files with stock
/// libraries. Bitwise (no table): checkpoints are megabytes at most and
/// are written once per eval interval, not per step.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Pad a tag to its 8-byte on-disk form; panics on tags the spec forbids
/// (tags are compile-time constants, so this is a programming error, not
/// an input error).
fn tag_bytes(tag: &str) -> [u8; 8] {
    assert!(
        !tag.is_empty() && tag.len() <= 8,
        "section tag `{tag}` must be 1..=8 bytes"
    );
    assert!(
        tag.bytes().all(|b| b.is_ascii_graphic()),
        "section tag `{tag}` must be ASCII graphic characters"
    );
    let mut out = [b' '; 8];
    out[..tag.len()].copy_from_slice(tag.as_bytes());
    out
}

/// Zero-padding needed to align `len` up to an 8-byte boundary.
fn pad_len(len: usize) -> usize {
    (8 - len % 8) % 8
}

/// Assembles a checkpoint file: add sections in order, then write.
#[derive(Default)]
pub struct CkptWriter {
    sections: Vec<([u8; 8], Vec<u8>)>,
}

impl CkptWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a section. Tags must be unique within one file.
    pub fn section(&mut self, tag: &str, payload: Vec<u8>) -> &mut Self {
        let tb = tag_bytes(tag);
        assert!(
            self.sections.iter().all(|(t, _)| *t != tb),
            "duplicate section tag `{tag}`"
        );
        self.sections.push((tb, payload));
        self
    }

    /// Serialize to the full on-disk byte stream (magic through checksum).
    pub fn to_bytes(&self) -> Vec<u8> {
        let body: usize = self
            .sections
            .iter()
            .map(|(_, p)| 16 + p.len() + pad_len(p.len()))
            .sum();
        let mut out = Vec::with_capacity(16 + body + 4);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (tag, payload) in &self.sections {
            out.extend_from_slice(tag);
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(payload);
            out.extend(std::iter::repeat_n(0u8, pad_len(payload.len())));
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Write the file (parent directories created), returning the byte
    /// count on disk.
    pub fn write(&self, path: impl AsRef<Path>) -> Result<u64, CkptError> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let bytes = self.to_bytes();
        std::fs::write(path, &bytes)?;
        Ok(bytes.len() as u64)
    }
}

/// A parsed checkpoint: validated magic, version, structure, and
/// checksum, with sections addressable by tag. Unknown tags are retained
/// but ignored — the v1 forward-compatibility rule.
pub struct CkptReader {
    version: u32,
    sections: Vec<([u8; 8], Vec<u8>)>,
}

impl CkptReader {
    /// Parse and validate a full checkpoint byte stream.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CkptError> {
        if bytes.len() < 8 {
            return Err(CkptError::Truncated { context: "magic" });
        }
        if bytes[..8] != MAGIC {
            return Err(CkptError::BadMagic);
        }
        if bytes.len() < 16 {
            return Err(CkptError::Truncated { context: "header" });
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(CkptError::UnsupportedVersion(version));
        }
        let count = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")) as usize;

        // Structural parse first (so a mid-section EOF reports Truncated,
        // not a checksum mismatch against garbage), checksum second.
        let mut sections = Vec::with_capacity(count);
        let mut off = 16usize;
        let body_end = bytes.len().saturating_sub(4);
        for _ in 0..count {
            if off + 16 > body_end {
                return Err(CkptError::Truncated { context: "section header" });
            }
            let tag: [u8; 8] = bytes[off..off + 8].try_into().expect("8 bytes");
            let len = u64::from_le_bytes(bytes[off + 8..off + 16].try_into().expect("8 bytes"));
            let len = usize::try_from(len)
                .map_err(|_| CkptError::Malformed("section length overflows usize".into()))?;
            off += 16;
            if off + len > body_end {
                return Err(CkptError::Truncated { context: "section payload" });
            }
            sections.push((tag, bytes[off..off + len].to_vec()));
            off += len + pad_len(len);
        }
        if off > body_end {
            return Err(CkptError::Truncated { context: "section padding" });
        }
        if off != body_end {
            return Err(CkptError::Malformed(format!(
                "{} trailing bytes after last section",
                body_end - off
            )));
        }
        let stored = u32::from_le_bytes(bytes[body_end..].try_into().expect("4 bytes"));
        let computed = crc32(&bytes[..body_end]);
        if stored != computed {
            return Err(CkptError::ChecksumMismatch { stored, computed });
        }
        Ok(CkptReader { version, sections })
    }

    /// Read and validate a checkpoint file.
    pub fn read(path: impl AsRef<Path>) -> Result<Self, CkptError> {
        Self::from_bytes(&std::fs::read(path)?)
    }

    /// Container version of the parsed file.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Payload of the first section with `tag`, if present.
    pub fn section(&self, tag: &str) -> Option<&[u8]> {
        let tb = tag_bytes(tag);
        self.sections
            .iter()
            .find(|(t, _)| *t == tb)
            .map(|(_, p)| p.as_slice())
    }

    /// Like [`CkptReader::section`], erroring with
    /// [`CkptError::MissingSection`] when absent.
    pub fn require(&self, tag: &'static str) -> Result<&[u8], CkptError> {
        self.section(tag).ok_or(CkptError::MissingSection(tag))
    }

    /// All section tags in file order (trailing padding stripped),
    /// including ones this reader has no codec for.
    pub fn tags(&self) -> Vec<String> {
        self.sections
            .iter()
            .map(|(t, _)| String::from_utf8_lossy(t).trim_end().to_string())
            .collect()
    }
}

/// Little-endian payload encoder: the primitive layer every section
/// payload is built from (integers LE; floats as IEEE-754 bit patterns;
/// strings length-prefixed UTF-8).
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f32` as its bit pattern.
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Append an `f64` as its bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append raw bytes (length must be recoverable from context).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Finish, yielding the payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor over a section payload, mirroring [`ByteWriter`]. Runs past the
/// payload end surface as [`CkptError::Malformed`] — the container
/// checksum already passed, so a short payload is a codec-level defect,
/// not file corruption.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], CkptError> {
        if self.remaining() < n {
            return Err(CkptError::Malformed(format!(
                "payload exhausted reading {what} (need {n} bytes, have {})",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read a `u32`.
    pub fn get_u32(&mut self, what: &str) -> Result<u32, CkptError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes")))
    }

    /// Read a `u64`.
    pub fn get_u64(&mut self, what: &str) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }

    /// Read an `f32` bit pattern.
    pub fn get_f32(&mut self, what: &str) -> Result<f32, CkptError> {
        Ok(f32::from_bits(self.get_u32(what)?))
    }

    /// Read an `f64` bit pattern.
    pub fn get_f64(&mut self, what: &str) -> Result<f64, CkptError> {
        Ok(f64::from_bits(self.get_u64(what)?))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self, what: &str) -> Result<String, CkptError> {
        let len = self.get_u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CkptError::Malformed(format!("{what}: invalid UTF-8")))
    }

    /// Read exactly `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8], CkptError> {
        self.take(n, what)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for this parameterization.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn container_roundtrip_preserves_sections() {
        let mut w = CkptWriter::new();
        w.section("ALPHA", vec![1, 2, 3]).section("BETA", vec![]);
        let bytes = w.to_bytes();
        // Sections are 8-byte aligned: 16 header + 16+3+5 + 16+0 + 4 crc.
        assert_eq!(bytes.len(), 16 + 24 + 16 + 4);
        let r = CkptReader::from_bytes(&bytes).unwrap();
        assert_eq!(r.version(), VERSION);
        assert_eq!(r.section("ALPHA"), Some(&[1u8, 2, 3][..]));
        assert_eq!(r.section("BETA"), Some(&[][..]));
        assert_eq!(r.section("GAMMA"), None);
        assert_eq!(r.tags(), vec!["ALPHA", "BETA"]);
    }

    #[test]
    fn unknown_sections_are_skipped_not_fatal() {
        let mut w = CkptWriter::new();
        w.section("KNOWN", vec![7; 11]).section("FUTURE", vec![9; 23]);
        let r = CkptReader::from_bytes(&w.to_bytes()).unwrap();
        assert_eq!(r.section("KNOWN"), Some(&[7u8; 11][..]));
        // A reader with no FUTURE codec still sees KNOWN and validates.
        assert!(r.require("KNOWN").is_ok());
        assert!(matches!(r.require("ABSENT"), Err(CkptError::MissingSection("ABSENT"))));
    }

    #[test]
    fn byte_codec_roundtrips_primitives() {
        let mut w = ByteWriter::new();
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f32(-0.0);
        w.put_f64(f64::MIN_POSITIVE);
        w.put_str("naïve");
        let payload = w.into_bytes();
        let mut r = ByteReader::new(&payload);
        assert_eq!(r.get_u32("a").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64("b").unwrap(), u64::MAX - 1);
        assert_eq!(r.get_f32("c").unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(r.get_f64("d").unwrap(), f64::MIN_POSITIVE);
        assert_eq!(r.get_str("e").unwrap(), "naïve");
        assert_eq!(r.remaining(), 0);
        assert!(matches!(r.get_u32("past end"), Err(CkptError::Malformed(_))));
    }

    #[test]
    fn nan_bit_patterns_survive() {
        // The payload-level contract behind bit-identical resume: even
        // non-finite values round-trip exactly.
        let weird = f32::from_bits(0x7FC0_1234); // a signaling-ish NaN payload
        let mut w = ByteWriter::new();
        w.put_f32(weird);
        let payload = w.into_bytes();
        let mut r = ByteReader::new(&payload);
        assert_eq!(r.get_f32("nan").unwrap().to_bits(), 0x7FC0_1234);
    }
}
