//! Typed codecs over the container: [`matsciml_nn::ParamSet`] values and
//! [`matsciml_opt::AdamWState`] as section payloads.
//!
//! Tensor wire form (shared by both sections): `u32` ndim, `u64` dims,
//! then `numel` f32 bit patterns in row-major order. Gradients are not
//! stored — a loaded `ParamSet` starts with zeroed accumulators, which is
//! exactly the state at a step boundary (the trainer zeroes gradients
//! before each step).

use matsciml_nn::{ParamId, ParamSet};
use matsciml_opt::{AdamWConfig, AdamWState};
use matsciml_tensor::{HalfTensor, Precision, Tensor};

use crate::format::{ByteReader, ByteWriter, CkptError};

/// Guard against absurd dimension counts from corrupt-but-checksummed
/// payloads (a hand-edited file with a recomputed CRC).
const MAX_NDIM: u32 = 8;

fn put_tensor(w: &mut ByteWriter, t: &Tensor) {
    w.put_u32(t.shape().len() as u32);
    for &d in t.shape() {
        w.put_u64(d as u64);
    }
    for &v in t.as_slice() {
        w.put_f32(v);
    }
}

fn get_tensor(r: &mut ByteReader<'_>, what: &str) -> Result<Tensor, CkptError> {
    let ndim = r.get_u32(what)?;
    if ndim > MAX_NDIM {
        return Err(CkptError::Malformed(format!(
            "{what}: implausible tensor rank {ndim}"
        )));
    }
    let mut shape = Vec::with_capacity(ndim as usize);
    let mut numel = 1usize;
    for _ in 0..ndim {
        let d = r.get_u64(what)?;
        let d = usize::try_from(d)
            .map_err(|_| CkptError::Malformed(format!("{what}: dimension overflows usize")))?;
        numel = numel
            .checked_mul(d)
            .ok_or_else(|| CkptError::Malformed(format!("{what}: tensor volume overflows")))?;
        shape.push(d);
    }
    let need = numel
        .checked_mul(4)
        .ok_or_else(|| CkptError::Malformed(format!("{what}: tensor byte size overflows")))?;
    if r.remaining() < need {
        return Err(CkptError::Malformed(format!(
            "{what}: payload exhausted reading {numel} scalars"
        )));
    }
    let mut data = Vec::with_capacity(numel);
    for _ in 0..numel {
        data.push(r.get_f32(what)?);
    }
    Tensor::from_vec(&shape, data)
        .map_err(|e| CkptError::Malformed(format!("{what}: {e:?}")))
}

/// Encode a parameter store's names, shapes, and values as a `PARAMS`
/// section payload.
pub fn encode_params(params: &ParamSet) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(params.len() as u64);
    for i in 0..params.len() {
        let id = ParamId(i);
        w.put_str(params.name(id));
        put_tensor(&mut w, params.value(id));
    }
    w.into_bytes()
}

/// Decode a `PARAMS` payload into a fresh store (gradients zeroed).
pub fn decode_params(payload: &[u8]) -> Result<ParamSet, CkptError> {
    let mut r = ByteReader::new(payload);
    let count = r.get_u64("param count")?;
    let count = usize::try_from(count)
        .map_err(|_| CkptError::Malformed("param count overflows usize".into()))?;
    let mut params = ParamSet::new();
    for i in 0..count {
        let name = r.get_str("param name")?;
        let value = get_tensor(&mut r, &format!("param {i} ({name})"))?;
        params.register(name, value);
    }
    if r.remaining() != 0 {
        return Err(CkptError::Malformed(format!(
            "{} stray bytes after last parameter",
            r.remaining()
        )));
    }
    Ok(params)
}

/// A decoded `PRMH` section: parameters dequantized back to f32, plus
/// the quantization summary recorded at save time.
#[derive(Debug)]
pub struct HalfParams {
    /// Storage precision the section was written with (f16 or bf16).
    pub precision: Precision,
    /// Parameter store holding the dequantized values (each f32 is the
    /// exact value its packed bits represent; gradients zeroed).
    pub params: ParamSet,
    /// Per-tensor largest absolute quantization error, in registration
    /// order — measured against the full-precision values at save time.
    pub max_abs_errors: Vec<f32>,
}

/// Encode a parameter store as a quantized `PRMH` section payload:
/// `u32` precision tag, `u64` count, then per parameter its name, the
/// f32 max-abs quantization error, `u32` ndim, `u64` dims, and the
/// packed 16-bit values (little-endian pairs). Halves parameter bytes
/// relative to `PARAMS`; the layout is normative in
/// `docs/CHECKPOINT_FORMAT.md`.
///
/// # Panics
/// If `precision` is [`Precision::F32`] — full precision belongs in a
/// `PARAMS` section.
pub fn encode_params_half(params: &ParamSet, precision: Precision) -> Vec<u8> {
    assert!(
        precision != Precision::F32,
        "encode_params_half: use PARAMS for full-precision storage"
    );
    let mut w = ByteWriter::new();
    w.put_u32(u32::from(precision.tag_byte()));
    w.put_u64(params.len() as u64);
    for i in 0..params.len() {
        let id = ParamId(i);
        let value = params.value(id);
        let half = HalfTensor::quantize(value, precision);
        w.put_str(params.name(id));
        w.put_f32(half.max_abs_error(value));
        w.put_u32(half.shape().len() as u32);
        for &d in half.shape() {
            w.put_u64(d as u64);
        }
        let mut packed = Vec::with_capacity(half.numel() * 2);
        for &b in half.bits() {
            packed.extend_from_slice(&b.to_le_bytes());
        }
        w.put_bytes(&packed);
    }
    w.into_bytes()
}

/// Decode a `PRMH` payload, dequantizing every tensor back to the
/// exact f32 values its packed bits represent.
pub fn decode_params_half(payload: &[u8]) -> Result<HalfParams, CkptError> {
    let mut r = ByteReader::new(payload);
    let tag = r.get_u32("half precision tag")?;
    let precision = u8::try_from(tag)
        .ok()
        .and_then(Precision::from_tag_byte)
        .filter(|&p| p != Precision::F32)
        .ok_or_else(|| CkptError::Malformed(format!("unknown half precision tag {tag}")))?;
    let count = r.get_u64("half param count")?;
    let count = usize::try_from(count)
        .map_err(|_| CkptError::Malformed("half param count overflows usize".into()))?;
    let mut params = ParamSet::new();
    let mut max_abs_errors = Vec::with_capacity(count);
    for i in 0..count {
        let name = r.get_str("half param name")?;
        let what = format!("half param {i} ({name})");
        let max_abs_error = r.get_f32(&what)?;
        let ndim = r.get_u32(&what)?;
        if ndim > MAX_NDIM {
            return Err(CkptError::Malformed(format!(
                "{what}: implausible tensor rank {ndim}"
            )));
        }
        let mut shape = Vec::with_capacity(ndim as usize);
        let mut numel = 1usize;
        for _ in 0..ndim {
            let d = r.get_u64(&what)?;
            let d = usize::try_from(d)
                .map_err(|_| CkptError::Malformed(format!("{what}: dimension overflows usize")))?;
            numel = numel
                .checked_mul(d)
                .ok_or_else(|| CkptError::Malformed(format!("{what}: tensor volume overflows")))?;
            shape.push(d);
        }
        let need = numel
            .checked_mul(2)
            .ok_or_else(|| CkptError::Malformed(format!("{what}: tensor byte size overflows")))?;
        let packed = r.get_bytes(need, &what)?;
        let bits: Vec<u16> = packed
            .chunks_exact(2)
            .map(|c| u16::from_le_bytes([c[0], c[1]]))
            .collect();
        let value = HalfTensor::from_parts(precision, shape, bits).dequantize();
        params.register(name, value);
        max_abs_errors.push(max_abs_error);
    }
    if r.remaining() != 0 {
        return Err(CkptError::Malformed(format!(
            "{} stray bytes after last half parameter",
            r.remaining()
        )));
    }
    Ok(HalfParams {
        precision,
        params,
        max_abs_errors,
    })
}

/// Encode AdamW state (hyperparameters, step count, both moment vectors)
/// as an `OPTADAMW` section payload.
pub fn encode_adamw(state: &AdamWState) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_f32(state.cfg.lr);
    w.put_f32(state.cfg.beta1);
    w.put_f32(state.cfg.beta2);
    w.put_f32(state.cfg.eps);
    w.put_f32(state.cfg.weight_decay);
    w.put_u64(state.t);
    w.put_u64(state.m.len() as u64);
    for t in &state.m {
        put_tensor(&mut w, t);
    }
    for t in &state.v {
        put_tensor(&mut w, t);
    }
    w.into_bytes()
}

/// Decode an `OPTADAMW` payload.
pub fn decode_adamw(payload: &[u8]) -> Result<AdamWState, CkptError> {
    let mut r = ByteReader::new(payload);
    let cfg = AdamWConfig {
        lr: r.get_f32("adamw lr")?,
        beta1: r.get_f32("adamw beta1")?,
        beta2: r.get_f32("adamw beta2")?,
        eps: r.get_f32("adamw eps")?,
        weight_decay: r.get_f32("adamw weight_decay")?,
    };
    let t = r.get_u64("adamw step count")?;
    let count = r.get_u64("adamw moment count")?;
    let count = usize::try_from(count)
        .map_err(|_| CkptError::Malformed("moment count overflows usize".into()))?;
    let mut m = Vec::with_capacity(count);
    for i in 0..count {
        m.push(get_tensor(&mut r, &format!("adamw m[{i}]"))?);
    }
    let mut v = Vec::with_capacity(count);
    for i in 0..count {
        v.push(get_tensor(&mut r, &format!("adamw v[{i}]"))?);
    }
    if r.remaining() != 0 {
        return Err(CkptError::Malformed(format!(
            "{} stray bytes after optimizer moments",
            r.remaining()
        )));
    }
    for (i, (mi, vi)) in m.iter().zip(&v).enumerate() {
        if mi.shape() != vi.shape() {
            return Err(CkptError::Malformed(format!(
                "adamw moment {i}: m shape {:?} != v shape {:?}",
                mi.shape(),
                vi.shape()
            )));
        }
    }
    Ok(AdamWState { cfg, m, v, t })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(t: &Tensor) -> Vec<u32> {
        t.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn params_roundtrip_bit_exact() {
        let mut ps = ParamSet::new();
        ps.register("w", Tensor::from_vec(&[2, 3], vec![1.5, -0.0, 3e-39, 7.0, -2.5, 0.1]).unwrap());
        ps.register("b", Tensor::from_vec(&[3], vec![f32::MIN_POSITIVE, 1e30, -1e-30]).unwrap());
        let back = decode_params(&encode_params(&ps)).unwrap();
        assert_eq!(back.len(), 2);
        for i in 0..2 {
            let id = ParamId(i);
            assert_eq!(back.name(id), ps.name(id));
            assert_eq!(back.value(id).shape(), ps.value(id).shape());
            assert_eq!(bits(back.value(id)), bits(ps.value(id)));
            assert!(back.grad(id).as_slice().iter().all(|&g| g == 0.0));
        }
    }

    #[test]
    fn adamw_roundtrip_bit_exact() {
        let state = AdamWState {
            cfg: AdamWConfig {
                lr: 3.7e-4,
                ..Default::default()
            },
            m: vec![Tensor::from_vec(&[2], vec![0.25, -0.5]).unwrap()],
            v: vec![Tensor::from_vec(&[2], vec![1e-12, 4.0]).unwrap()],
            t: 10,
        };
        let back = decode_adamw(&encode_adamw(&state)).unwrap();
        assert_eq!(back.t, 10);
        assert_eq!(back.cfg.lr.to_bits(), state.cfg.lr.to_bits());
        assert_eq!(bits(&back.m[0]), bits(&state.m[0]));
        assert_eq!(bits(&back.v[0]), bits(&state.v[0]));
    }

    #[test]
    fn half_params_roundtrip_is_storage_exact() {
        let mut ps = ParamSet::new();
        ps.register(
            "enc.w",
            Tensor::from_vec(&[2, 3], vec![1.5, -0.0, 3e-39, 7.0, -2.5, 0.1]).unwrap(),
        );
        ps.register("head.b", Tensor::from_vec(&[3], vec![0.25, 1e4, -1e-4]).unwrap());
        for precision in [Precision::F16, Precision::Bf16] {
            let payload = encode_params_half(&ps, precision);
            let half = decode_params_half(&payload).unwrap();
            assert_eq!(half.precision, precision);
            assert_eq!(half.params.len(), 2);
            assert_eq!(half.max_abs_errors.len(), 2);
            for i in 0..2 {
                let id = ParamId(i);
                assert_eq!(half.params.name(id), ps.name(id));
                assert_eq!(half.params.value(id).shape(), ps.value(id).shape());
                // Decoded values are exactly the quantized values: one
                // more encode/decode round trip is the identity.
                let expect = HalfTensor::quantize(ps.value(id), precision).dequantize();
                assert_eq!(bits(half.params.value(id)), bits(&expect));
                // The recorded error summary bounds the actual drift.
                let err = half.max_abs_errors[i];
                for (&q, &r) in expect.as_slice().iter().zip(ps.value(id).as_slice()) {
                    assert!((q - r).abs() <= err);
                }
            }
            // Storage really is half: the payload is dominated by
            // 2-byte scalars instead of 4-byte ones.
            let full = encode_params(&ps);
            assert!(payload.len() < full.len());
        }
    }

    #[test]
    fn half_params_reject_corruption() {
        let mut ps = ParamSet::new();
        ps.register("w", Tensor::from_vec(&[4], vec![1.0; 4]).unwrap());
        let full = encode_params_half(&ps, Precision::F16);
        for cut in [0, 3, 12, full.len() - 1] {
            assert!(
                matches!(decode_params_half(&full[..cut]), Err(CkptError::Malformed(_))),
                "cut at {cut} must be Malformed"
            );
        }
        // Unknown precision tag (or the F32 tag, which is not packed).
        let mut bad = full.clone();
        bad[0] = 9;
        assert!(matches!(decode_params_half(&bad), Err(CkptError::Malformed(_))));
        bad[0] = 0;
        assert!(matches!(decode_params_half(&bad), Err(CkptError::Malformed(_))));
    }

    #[test]
    fn short_payload_is_malformed_not_panic() {
        let full = encode_params(&{
            let mut ps = ParamSet::new();
            ps.register("w", Tensor::from_vec(&[4], vec![1.0; 4]).unwrap());
            ps
        });
        for cut in [0, 4, 9, full.len() - 1] {
            assert!(
                matches!(decode_params(&full[..cut]), Err(CkptError::Malformed(_))),
                "cut at {cut} must be Malformed"
            );
        }
    }
}
