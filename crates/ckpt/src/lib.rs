//! `matsciml-ckpt` — the versioned binary checkpoint container.
//!
//! A checkpoint is a single file holding tagged sections (parameters,
//! optimizer moments, architecture JSON, trainer state) behind an 8-byte
//! magic, a format version, and a trailing CRC-32 over the whole file.
//! The on-disk layout is specified normatively in
//! `docs/CHECKPOINT_FORMAT.md`; this crate is one implementation of that
//! spec, not its definition.
//!
//! Design constraints, in priority order:
//!
//! 1. **Bit-exactness.** Every f32 is stored as its IEEE-754 bit pattern,
//!    so save → load → resume reproduces the uninterrupted trajectory bit
//!    for bit (asserted end-to-end by the train crate's
//!    `restart_bitwise` test).
//! 2. **Loud corruption.** Truncation, a foreign file, a future version,
//!    and a flipped byte each surface as a distinct [`CkptError`]
//!    variant — never a panic, never a silently wrong model.
//! 3. **Forward compatibility.** Readers skip sections whose tag they do
//!    not recognize, so a v1 reader opens files written by later
//!    toolkits that append new sections.
//!
//! The container ([`CkptWriter`] / [`CkptReader`]) is payload-agnostic;
//! the typed codecs for [`matsciml_nn::ParamSet`] and
//! [`matsciml_opt::AdamWState`] live in [`state`].

#![warn(missing_docs)]

mod format;
pub mod state;

pub use format::{
    crc32, ByteReader, ByteWriter, CkptError, CkptReader, CkptWriter, MAGIC, VERSION,
};
pub use state::{
    decode_adamw, decode_params, decode_params_half, encode_adamw, encode_params,
    encode_params_half, HalfParams,
};

/// Section tags defined by `matsciml-ckpt/v1`. Tags are 1–8 ASCII bytes,
/// space-padded on disk; unknown tags must be skipped by readers.
pub mod tags {
    /// Parameter tensors: names, shapes, and f32 bit patterns.
    pub const PARAMS: &str = "PARAMS";
    /// AdamW optimizer state: hyperparameters, step count, moments.
    pub const OPT_ADAMW: &str = "OPTADAMW";
    /// Model architecture as UTF-8 JSON (encoder + heads, no weights).
    pub const MODEL_JSON: &str = "MODELJSN";
    /// Training configuration as UTF-8 JSON.
    pub const TRAIN_CONFIG: &str = "TRAINCFG";
    /// Trainer progress: completed steps, best metric, early-stop state.
    pub const TRAIN_STATE: &str = "TRAINST";
    /// Quantized parameter tensors (f16/bf16 packed bits plus a
    /// per-tensor max-abs-error summary) — the reduced-precision
    /// inference artifact. Pre-PRMH readers skip it via the v1
    /// unknown-tag rule.
    pub const PARAMS_HALF: &str = "PRMH";
}
