//! Corruption handling for the `matsciml-ckpt/v1` container: every way a
//! file can be damaged must surface as the matching typed [`CkptError`]
//! variant — never a panic, never a silently wrong model — plus a
//! round-trip property test over odd `ParamSet` shapes.

use matsciml_ckpt::{
    decode_params, encode_params, tags, CkptError, CkptReader, CkptWriter, MAGIC, VERSION,
};
use matsciml_nn::{ParamId, ParamSet};
use matsciml_tensor::Tensor;
use proptest::prelude::*;

/// A small but non-trivial checkpoint byte stream to corrupt.
fn sample_file() -> Vec<u8> {
    let mut ps = ParamSet::new();
    ps.register("embed.w", Tensor::from_vec(&[3, 4], (0..12).map(|i| i as f32 * 0.5 - 3.0).collect()).unwrap());
    ps.register("head.b", Tensor::from_vec(&[1], vec![-0.0]).unwrap());
    let mut w = CkptWriter::new();
    w.section(tags::PARAMS, encode_params(&ps));
    w.section(tags::TRAIN_STATE, vec![0xAB; 20]);
    w.to_bytes()
}

#[test]
fn truncated_file_is_a_typed_error() {
    let full = sample_file();
    // Cut mid-magic, mid-header, mid-section-header, and mid-payload:
    // all must parse-fail as Truncated, not panic or misreport.
    for cut in [3, 10, 20, full.len() / 2] {
        match CkptReader::from_bytes(&full[..cut]) {
            Err(CkptError::Truncated { .. }) => {}
            other => panic!("cut at {cut}: expected Truncated, got {other:?}", other = other.err()),
        }
    }
}

#[test]
fn bad_magic_is_rejected_before_anything_else() {
    let mut bytes = sample_file();
    bytes[0] = b'{'; // looks like JSON now
    assert!(matches!(CkptReader::from_bytes(&bytes), Err(CkptError::BadMagic)));
    // A totally foreign file too.
    assert!(matches!(
        CkptReader::from_bytes(b"PK\x03\x04 definitely a zip archive"),
        Err(CkptError::BadMagic)
    ));
}

#[test]
fn future_version_is_refused_with_the_version_number() {
    let mut bytes = sample_file();
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    match CkptReader::from_bytes(&bytes) {
        Err(CkptError::UnsupportedVersion(v)) => assert_eq!(v, 99),
        other => panic!("expected UnsupportedVersion, got {other:?}", other = other.err()),
    }
}

#[test]
fn every_flipped_payload_byte_fails_the_checksum() {
    let full = sample_file();
    // Flip one byte at a time across the payload region (past the fixed
    // header, before the stored CRC). The structural parse still
    // succeeds for in-payload flips, so the checksum must catch them.
    let params_start = 16 + 16; // file header + first section header
    for pos in (params_start..full.len() - 4).step_by(7) {
        let mut bytes = full.clone();
        bytes[pos] ^= 0x40;
        match CkptReader::from_bytes(&bytes) {
            Err(CkptError::ChecksumMismatch { stored, computed }) => {
                assert_ne!(stored, computed)
            }
            // A flip inside a section *length* field derails the
            // structural parse first — also a loud, typed failure.
            Err(CkptError::Truncated { .. }) | Err(CkptError::Malformed(_)) => {}
            other => panic!(
                "flip at {pos}: expected a typed error, got {other:?}",
                other = other.err()
            ),
        }
    }
}

#[test]
fn flipped_checksum_bytes_also_fail() {
    let full = sample_file();
    let mut bytes = full.clone();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    assert!(matches!(
        CkptReader::from_bytes(&bytes),
        Err(CkptError::ChecksumMismatch { .. })
    ));
}

#[test]
fn intact_file_still_parses() {
    let r = CkptReader::from_bytes(&sample_file()).unwrap();
    assert_eq!(r.version(), VERSION);
    assert!(r.section(tags::PARAMS).is_some());
    assert_eq!(r.tags(), vec![tags::PARAMS, tags::TRAIN_STATE]);
    // Sanity: the magic constant is what the spec says it is.
    assert_eq!(MAGIC, [0x89, b'M', b'C', b'K', b'P', b'T', 0x0D, 0x0A]);
}

/// Strategy for awkward tensor shapes: scalars-as-[1], skinny matrices,
/// singleton dimensions, rank-3 blocks.
fn odd_shape() -> impl Strategy<Value = Vec<usize>> {
    (1usize..4, 1usize..8, 1usize..8, 1usize..5).prop_map(|(rank, a, b, c)| match rank {
        1 => vec![a],
        2 => vec![a, b],
        _ => vec![a, b, c],
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn param_roundtrip_is_bit_exact_over_odd_shapes(
        shapes in proptest::collection::vec(odd_shape(), 1..6),
        seed in any::<u64>(),
    ) {
        // Fill with values spanning magnitudes, signed zeros, subnormals.
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let bits = (state >> 32) as u32;
            match bits % 17 {
                0 => -0.0f32,
                1 => f32::MIN_POSITIVE / 2.0, // subnormal
                2 => 1e-38,
                3 => -3.4e38,
                _ => f32::from_bits(bits % 0x7F7F_FFFF), // arbitrary finite
            }
        };
        let mut ps = ParamSet::new();
        for (i, shape) in shapes.iter().enumerate() {
            let numel: usize = shape.iter().product();
            let data: Vec<f32> = (0..numel).map(|_| next()).collect();
            ps.register(format!("p{i}"), Tensor::from_vec(shape, data).unwrap());
        }

        // Through the full container, not just the codec.
        let mut w = CkptWriter::new();
        w.section(tags::PARAMS, encode_params(&ps));
        let bytes = w.to_bytes();
        let r = CkptReader::from_bytes(&bytes).unwrap();
        let back = decode_params(r.require(tags::PARAMS).unwrap()).unwrap();

        prop_assert_eq!(back.len(), ps.len());
        for i in 0..ps.len() {
            let id = ParamId(i);
            prop_assert_eq!(back.name(id), ps.name(id));
            prop_assert_eq!(back.value(id).shape(), ps.value(id).shape());
            let a: Vec<u32> = back.value(id).as_slice().iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = ps.value(id).as_slice().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(a, b, "param {} bit patterns drifted", i);
        }
    }
}
