//! Minimal stand-in for `criterion`.
//!
//! The workspace builds hermetically (no crates.io), so this crate
//! provides a compatible subset of criterion's harness API: benchmark
//! groups, `bench_function`/`bench_with_input`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros. Measurement is a simple
//! warmup + timed-batch loop reporting mean/min wall-clock time per
//! iteration to stdout — no statistics engine, plots, or saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-iteration measurement driver handed to bench closures.
pub struct Bencher {
    samples: usize,
    budget: Duration,
    /// (mean, min) nanoseconds per iteration, filled by `iter`.
    result_ns: Option<(f64, f64)>,
}

impl Bencher {
    /// Measure `f`, recording mean and min time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warmup call (fills caches, triggers lazy init).
        black_box(f());
        let started = Instant::now();
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut runs = 0u64;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed();
            total += dt;
            min = min.min(dt);
            runs += 1;
            if started.elapsed() > self.budget {
                break;
            }
        }
        let mean = total.as_nanos() as f64 / runs as f64;
        self.result_ns = Some((mean, min.as_nanos() as f64));
    }
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Id from a parameter value (e.g. a problem size).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// Id from a function name plus parameter.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_owned())
    }
}

/// A named set of related benchmarks sharing sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    budget: Duration,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the target number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self.budget = self.budget.max(Duration::from_millis(10));
        self
    }

    /// Cap the total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.budget = d;
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut b = Bencher {
            samples: self.samples,
            budget: self.budget,
            result_ns: None,
        };
        f(&mut b);
        match b.result_ns {
            Some((mean, min)) => println!(
                "bench {group}/{id}: mean {mean} min {min}",
                group = self.name,
                mean = fmt_ns(mean),
                min = fmt_ns(min),
            ),
            None => println!(
                "bench {group}/{id}: no measurement (Bencher::iter never called)",
                group = self.name
            ),
        }
    }

    /// Benchmark a closure.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        self.run(id.into().0, f);
        self
    }

    /// Benchmark a closure parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.0, |b| f(b, input));
        self
    }

    /// Finish the group (prints nothing extra; parity with criterion).
    pub fn finish(self) {}
}

/// The harness entry point.
pub struct Criterion {
    default_samples: usize,
    default_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_samples: 20,
            default_budget: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Parity shim for criterion's CLI-argument hook (no-op here).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            samples: self.default_samples,
            budget: self.default_budget,
            _criterion: self,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let group = self.benchmark_group("");
        let mut b = Bencher {
            samples: group.samples,
            budget: group.budget,
            result_ns: None,
        };
        let mut f = f;
        f(&mut b);
        if let Some((mean, min)) = b.result_ns {
            println!("bench {name}: mean {} min {}", fmt_ns(mean), fmt_ns(min));
        }
        group.finish();
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Bundle bench functions into one runner fn, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_timing() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group
            .sample_size(5)
            .measurement_time(Duration::from_millis(50));
        let mut ran = 0u32;
        group.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box((0..100).sum::<u64>())
            })
        });
        group.finish();
        assert!(ran >= 2, "warmup + at least one timed run");
    }
}
