//! Minimal stand-in for `proptest`.
//!
//! The workspace builds hermetically (no crates.io), so this crate
//! implements the property-testing surface the toolkit's tests use: the
//! [`proptest!`] macro with `#![proptest_config(...)]`, range and tuple
//! strategies, [`collection::vec`], [`any`], `prop_map`/`prop_filter_map`,
//! and the `prop_assert*` macros.
//!
//! Differences from real proptest: no shrinking (a failing case reports
//! its values via the assertion message only), and case generation is
//! seeded from the test name, so runs are fully deterministic rather than
//! randomized per invocation.

use std::marker::PhantomData;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Deterministic generator handed to strategies (seeded per test).
pub struct TestRng(StdRng);

impl TestRng {
    /// Derive a generator from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Why a generated case did not count toward the target.
#[derive(Debug)]
pub enum TestCaseError {
    /// Case rejected by `prop_assume!`; another case will be drawn.
    Reject(String),
    /// Property violated; the test fails.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
    /// Build a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Runner configuration (the subset the toolkit sets).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Drive one property: draw cases until `cfg.cases` pass, panicking on the
/// first failure. Rejections redraw, with a cap to catch dead filters.
pub fn run_cases<F>(cfg: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::from_name(name);
    let mut passed = 0u32;
    let mut rejected = 0u64;
    while passed < cfg.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= 256 * cfg.cases as u64,
                    "proptest stub: {name} rejected {rejected} cases — filter too strict"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest stub: {name} failed after {passed} passing cases: {msg}")
            }
        }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Transform with rejection: `None` redraws (bounded retries).
    fn prop_filter_map<U, F: Fn(Self::Value) -> Option<U>>(
        self,
        whence: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            whence,
            f,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        for _ in 0..10_000 {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!(
            "proptest stub: prop_filter_map({:?}) rejected 10000 draws",
            self.whence
        );
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, G);

/// Types with a canonical full-range strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u32()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        // Finite, roughly centered values — proptest's default f32 domain
        // minus the non-finite specials the toolkit never wants.
        rng.gen_range(-1.0e6f32..1.0e6)
    }
}

/// Strategy for an unconstrained `T` (see [`Arbitrary`]).
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Lengths accepted by [`vec`]: a fixed `usize` or a `Range<usize>`.
    pub trait SizeRange {
        /// Draw a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of values from `element` with length drawn from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// Define property tests (see crate docs for the supported grammar).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    (@cfg ($cfg:expr) $($(#[$meta:meta])+ fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                $crate::run_cases(__cfg, stringify!($name), |__rng| {
                    $(let $pat = $crate::Strategy::generate(&($strat), __rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
    ($($(#[$meta:meta])+ fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest! {
            @cfg ($crate::ProptestConfig::default())
            $($(#[$meta])+ fn $name($($pat in $strat),+) $body)*
        }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} — {} ({}:{})",
                stringify!($cond), format!($($fmt)+), file!(), line!()
            )));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?} ({}:{})",
                stringify!($left), stringify!($right), __l, __r, file!(), line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} — {}\n  left: {:?}\n right: {:?} ({}:{})",
                stringify!($left), stringify!($right), format!($($fmt)+), __l, __r,
                file!(), line!()
            )));
        }
    }};
}

/// Discard the current case unless `cond` holds (draws a fresh one).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Glob import mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(x in -3.0f32..3.0, n in 1usize..10, (a, b) in (0u32..4, 0u32..4)) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            prop_assert!(a < 4 && b < 4);
        }

        #[test]
        fn vec_strategy_respects_length(v in crate::collection::vec(0u32..6, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 6));
        }

        #[test]
        fn prop_map_applies(y in (1u32..5).prop_map(|v| v * 10)) {
            prop_assert!(y >= 10 && y < 50);
            prop_assert_eq!(y % 10, 0);
        }

        #[test]
        fn filter_map_filters(v in (0u32..10).prop_filter_map("odd only", |v| (v % 2 == 1).then_some(v))) {
            prop_assert!(v % 2 == 1);
        }
    }

    #[test]
    fn assume_rejects_and_redraws() {
        let cfg = ProptestConfig::with_cases(20);
        let mut seen = 0u32;
        crate::run_cases(cfg, "assume_test", |rng| {
            let v = crate::Strategy::generate(&(0u32..10), rng);
            prop_assume!(v < 5);
            seen += 1;
            prop_assert!(v < 5);
            Ok(())
        });
        assert_eq!(seen, 20);
    }
}
