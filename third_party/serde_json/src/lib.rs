//! Minimal stand-in for `serde_json` over the in-repo serde stub.
//!
//! Translates between JSON text and the serde stub's `Content` data model
//! (`serde::de::Content`): [`to_string`]/[`to_string_pretty`] lower a
//! `Serialize` value to `Content` and render it; [`from_str`]/
//! [`from_slice`] parse JSON into `Content` and lift it with
//! `Deserialize`. Non-finite floats render as `null` (and read back as
//! NaN), matching how this repo's artifacts tolerate divergent runs.

use std::fmt;

use serde::de::{Content, ContentDeserializer, Error as DeError};
use serde::ser::to_content;
use serde::{Deserialize, Serialize};

/// JSON serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl DeError for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let content = to_content::<T, Error>(value)?;
    let mut out = String::new();
    render(&content, None, 0, &mut out)?;
    Ok(out)
}

/// Serialize `value` to a 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let content = to_content::<T, Error>(value)?;
    let mut out = String::new();
    render(&content, Some(2), 0, &mut out)?;
    Ok(out)
}

/// Deserialize a `T` from a JSON string.
pub fn from_str<'de, T: Deserialize<'de>>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let content = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!(
            "trailing characters at byte {} of JSON input",
            p.pos
        )));
    }
    T::deserialize(ContentDeserializer::<Error>::new(content))
}

/// Deserialize a `T` from JSON bytes (must be UTF-8).
pub fn from_slice<'de, T: Deserialize<'de>>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn render(c: &Content, indent: Option<usize>, depth: usize, out: &mut String) -> Result<(), Error> {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F32(v) => {
            if v.is_finite() {
                out.push_str(&v.to_string());
            } else {
                out.push_str("null");
            }
        }
        Content::F64(v) => {
            if v.is_finite() {
                out.push_str(&v.to_string());
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => render_string(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render(item, indent, depth + 1, out)?;
            }
            if !items.is_empty() {
                newline_indent(indent, depth, out);
            }
            out.push(']');
        }
        Content::Map(pairs) => {
            out.push('{');
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                match k {
                    Content::Str(s) => render_string(s, out),
                    other => {
                        return Err(Error(format!(
                            "JSON object keys must be strings (got {other:?})"
                        )))
                    }
                }
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(v, indent, depth + 1, out)?;
            }
            if !pairs.is_empty() {
                newline_indent(indent, depth, out);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {} of JSON input", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Content::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Content::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Content::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => Ok(Content::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((Content::Str(key), val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                0x10000 + (((hi - 0xD800) as u32) << 10) + (lo - 0xDC00) as u32
                            } else {
                                hi as u32
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u16::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&1.5f32).unwrap(), "1.5");
        assert_eq!(from_str::<f32>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<bool>("false").unwrap(), false);
        assert_eq!(to_string(&-42i64).unwrap(), "-42");
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
        assert_eq!(to_string("hi\n\"there\"").unwrap(), "\"hi\\n\\\"there\\\"\"");
        assert_eq!(from_str::<String>("\"hi\\n\"").unwrap(), "hi\n");
    }

    #[test]
    fn f32_shortest_repr_roundtrips_exactly() {
        for v in [0.1f32, 1e-7, 3.4e38, -0.0625, 123456.78] {
            let s = to_string(&v).unwrap();
            let back: f32 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} via {s}");
        }
    }

    #[test]
    fn nonfinite_floats_become_null_and_read_back_nan() {
        assert_eq!(to_string(&f32::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert!(from_str::<f32>("null").unwrap().is_nan());
    }

    #[test]
    fn vec_and_map_roundtrip() {
        let v = vec![1u32, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&s).unwrap(), v);

        let mut m = BTreeMap::new();
        m.insert("loss".to_string(), 0.25f32);
        m.insert("mae".to_string(), 1.5f32);
        let s = to_string(&m).unwrap();
        assert_eq!(s, "{\"loss\":0.25,\"mae\":1.5}");
        assert_eq!(from_str::<BTreeMap<String, f32>>(&s).unwrap(), m);
    }

    #[test]
    fn option_and_tuple_roundtrip() {
        assert_eq!(to_string(&Option::<f32>::None).unwrap(), "null");
        assert_eq!(to_string(&Some(2.5f32)).unwrap(), "2.5");
        assert_eq!(from_str::<Option<f32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<f32>>("2.5").unwrap(), Some(2.5));
        let pair = (1.5f32, -2.0f32);
        let s = to_string(&pair).unwrap();
        assert_eq!(from_str::<(f32, f32)>(&s).unwrap(), pair);
    }

    #[test]
    fn nested_arrays_roundtrip() {
        let m = [[1.0f32, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]];
        let s = to_string(&m).unwrap();
        let back: [[f32; 3]; 3] = from_str(&s).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![vec![1u32], vec![2, 3]];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&s).unwrap(), v);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
        assert!(from_str::<u32>("\"nope\"").is_err());
        assert!(from_str::<bool>("truthy").is_err());
        assert!(from_str::<Vec<u32>>("[1] trailing").is_err());
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(from_str::<String>("\"\\u0041\"").unwrap(), "A");
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
    }
}
