//! Serialization half of the serde stub: the [`Serialize`]/[`Serializer`]
//! traits, the compound-builder traits ([`SerializeStruct`] and friends),
//! and a [`ContentSerializer`] that lowers any `Serialize` value into the
//! stub's [`Content`] data model for formats to render.

use std::collections::BTreeMap;
use std::marker::PhantomData;

use crate::de::Content;
pub use crate::de::Error;

/// Types that can lower themselves into a serializer.
pub trait Serialize {
    /// Drive `serializer` with `self`'s structure.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// The stub's serializer contract: the subset of serde's method surface
/// the toolkit's handwritten and derived impls call.
pub trait Serializer: Sized {
    /// Value produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Builder for named-field structs.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Builder for struct enum variants.
    type SerializeStructVariant: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Builder for sequences.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Builder for maps.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;

    /// Serialize a boolean.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serialize a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serialize an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `f32`.
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `f64`.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serialize `()`/unit.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serialize `None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serialize `Some(value)` (transparently).
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serialize a newtype struct (transparently, serde-style).
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serialize a unit enum variant (externally tagged: the variant name).
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serialize a newtype enum variant (externally tagged:
    /// `{variant: value}`).
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begin a struct enum variant (externally tagged:
    /// `{variant: {fields...}}`).
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;
    /// Begin a sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begin a map.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begin a named-field struct.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
}

/// Builder for struct serialization (`serde::ser::SerializeStruct`).
pub trait SerializeStruct {
    /// Value produced on `end`.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Append one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        name: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finish the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Builder for sequence serialization.
pub trait SerializeSeq {
    /// Value produced on `end`.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Append one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T)
        -> Result<(), Self::Error>;
    /// Finish the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Builder for map serialization.
pub trait SerializeMap {
    /// Value produced on `end`.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Append one entry.
    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Self::Error>;
    /// Finish the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

// ---------------------------------------------------------------------------
// ContentSerializer: lower any Serialize value into a Content tree.
// ---------------------------------------------------------------------------

/// A [`Serializer`] producing the stub's [`Content`] data model,
/// parameterized by the error type the calling format reports.
pub struct ContentSerializer<E> {
    _marker: PhantomData<fn() -> E>,
}

impl<E> ContentSerializer<E> {
    /// Construct.
    pub fn new() -> Self {
        ContentSerializer {
            _marker: PhantomData,
        }
    }
}

impl<E> Default for ContentSerializer<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// Serialize a value into a [`Content`] tree.
pub fn to_content<T: Serialize + ?Sized, E: Error>(value: &T) -> Result<Content, E> {
    value.serialize(ContentSerializer::<E>::new())
}

/// Compound builder used by [`ContentSerializer`] for structs and maps.
pub struct ContentPairs<E> {
    pairs: Vec<(Content, Content)>,
    _marker: PhantomData<fn() -> E>,
}

/// Compound builder used by [`ContentSerializer`] for sequences.
pub struct ContentItems<E> {
    items: Vec<Content>,
    _marker: PhantomData<fn() -> E>,
}

/// Compound builder used by [`ContentSerializer`] for struct variants:
/// fields collected under the variant tag.
pub struct ContentVariantPairs<E> {
    variant: &'static str,
    pairs: Vec<(Content, Content)>,
    _marker: PhantomData<fn() -> E>,
}

impl<E: Error> SerializeStruct for ContentVariantPairs<E> {
    type Ok = Content;
    type Error = E;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        name: &'static str,
        value: &T,
    ) -> Result<(), E> {
        let v = to_content(value)?;
        self.pairs.push((Content::Str(name.to_owned()), v));
        Ok(())
    }
    fn end(self) -> Result<Content, E> {
        Ok(Content::Map(vec![(
            Content::Str(self.variant.to_owned()),
            Content::Map(self.pairs),
        )]))
    }
}

impl<E: Error> Serializer for ContentSerializer<E> {
    type Ok = Content;
    type Error = E;
    type SerializeStruct = ContentPairs<E>;
    type SerializeStructVariant = ContentVariantPairs<E>;
    type SerializeSeq = ContentItems<E>;
    type SerializeMap = ContentPairs<E>;

    fn serialize_bool(self, v: bool) -> Result<Content, E> {
        Ok(Content::Bool(v))
    }
    fn serialize_i64(self, v: i64) -> Result<Content, E> {
        Ok(Content::I64(v))
    }
    fn serialize_u64(self, v: u64) -> Result<Content, E> {
        Ok(Content::U64(v))
    }
    fn serialize_f32(self, v: f32) -> Result<Content, E> {
        Ok(Content::F32(v))
    }
    fn serialize_f64(self, v: f64) -> Result<Content, E> {
        Ok(Content::F64(v))
    }
    fn serialize_str(self, v: &str) -> Result<Content, E> {
        Ok(Content::Str(v.to_owned()))
    }
    fn serialize_unit(self) -> Result<Content, E> {
        Ok(Content::Null)
    }
    fn serialize_none(self) -> Result<Content, E> {
        Ok(Content::Null)
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Content, E> {
        value.serialize(self)
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<Content, E> {
        value.serialize(self)
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<Content, E> {
        Ok(Content::Str(variant.to_owned()))
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Content, E> {
        let inner = to_content(value)?;
        Ok(Content::Map(vec![(Content::Str(variant.to_owned()), inner)]))
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<ContentVariantPairs<E>, E> {
        Ok(ContentVariantPairs {
            variant,
            pairs: Vec::with_capacity(len),
            _marker: PhantomData,
        })
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<ContentItems<E>, E> {
        Ok(ContentItems {
            items: Vec::with_capacity(len.unwrap_or(0)),
            _marker: PhantomData,
        })
    }
    fn serialize_map(self, len: Option<usize>) -> Result<ContentPairs<E>, E> {
        Ok(ContentPairs {
            pairs: Vec::with_capacity(len.unwrap_or(0)),
            _marker: PhantomData,
        })
    }
    fn serialize_struct(self, _name: &'static str, len: usize) -> Result<ContentPairs<E>, E> {
        Ok(ContentPairs {
            pairs: Vec::with_capacity(len),
            _marker: PhantomData,
        })
    }
}

impl<E: Error> SerializeStruct for ContentPairs<E> {
    type Ok = Content;
    type Error = E;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        name: &'static str,
        value: &T,
    ) -> Result<(), E> {
        let v = to_content(value)?;
        self.pairs.push((Content::Str(name.to_owned()), v));
        Ok(())
    }
    fn end(self) -> Result<Content, E> {
        Ok(Content::Map(self.pairs))
    }
}

impl<E: Error> SerializeMap for ContentPairs<E> {
    type Ok = Content;
    type Error = E;
    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), E> {
        let k = to_content(key)?;
        let v = to_content(value)?;
        self.pairs.push((k, v));
        Ok(())
    }
    fn end(self) -> Result<Content, E> {
        Ok(Content::Map(self.pairs))
    }
}

impl<E: Error> SerializeSeq for ContentItems<E> {
    type Ok = Content;
    type Error = E;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), E> {
        self.items.push(to_content(value)?);
        Ok(())
    }
    fn end(self) -> Result<Content, E> {
        Ok(Content::Seq(self.items))
    }
}

// ---------------------------------------------------------------------------
// Serialize impls for std types used by the workspace.
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_i64(*self as i64)
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_u64(*self as u64)
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f32(*self)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

fn serialize_slice<T: Serialize, S: Serializer>(
    items: &[T],
    serializer: S,
) -> Result<S::Ok, S::Error> {
    let mut seq = serializer.serialize_seq(Some(items.len()))?;
    for item in items {
        seq.serialize_element(item)?;
    }
    seq.end()
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_slice(self, serializer)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_slice(self, serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_slice(self, serializer)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(2))?;
        seq.serialize_element(&self.0)?;
        seq.serialize_element(&self.1)?;
        seq.end()
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(3))?;
        seq.serialize_element(&self.0)?;
        seq.serialize_element(&self.1)?;
        seq.serialize_element(&self.2)?;
        seq.end()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}
