//! Deserialization half of the serde stub: the [`Content`] value tree,
//! the [`Deserializer`]/[`Deserialize`] traits, and the helpers the
//! in-repo derive macro expands to ([`FieldMap`], [`variant_parts`],
//! [`from_content`]).

use std::collections::BTreeMap;
use std::fmt::Display;
use std::marker::PhantomData;

/// A self-describing value: the single data model every serializer
/// produces and every deserializer consumes in this stub.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` / `None` / a non-finite float.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer too large for `i64`.
    U64(u64),
    /// Single-precision float (kept distinct so its shortest decimal
    /// representation round-trips exactly).
    F32(f32),
    /// Double-precision float.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Content>),
    /// Ordered key/value map (insertion order preserved).
    Map(Vec<(Content, Content)>),
}

impl Content {
    fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) => "integer",
            Content::F32(_) | Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Error construction hook, mirroring `serde::de::Error` (and re-exported
/// as `serde::ser::Error`): any format error type can be built from a
/// display-able message.
pub trait Error: Sized + Display {
    /// Build an error carrying `msg`.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A source of [`Content`] (the stub's whole `Deserializer` contract).
pub trait Deserializer<'de>: Sized {
    /// Error type produced by the underlying format.
    type Error: Error;
    /// Parse the input into one self-describing value.
    fn deserialize_content(self) -> Result<Content, Self::Error>;
}

/// Types reconstructible from [`Content`].
pub trait Deserialize<'de>: Sized {
    /// Drive `deserializer` and build `Self`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A [`Deserializer`] over an already-materialized [`Content`] value,
/// parameterized by the error type it reports.
pub struct ContentDeserializer<E> {
    content: Content,
    _marker: PhantomData<fn() -> E>,
}

impl<E> ContentDeserializer<E> {
    /// Wrap `content`.
    pub fn new(content: Content) -> Self {
        ContentDeserializer {
            content,
            _marker: PhantomData,
        }
    }
}

impl<'de, E: Error> Deserializer<'de> for ContentDeserializer<E> {
    type Error = E;
    fn deserialize_content(self) -> Result<Content, E> {
        Ok(self.content)
    }
}

/// Deserialize a `T` straight out of a [`Content`] value.
pub fn from_content<'de, T: Deserialize<'de>, E: Error>(content: Content) -> Result<T, E> {
    T::deserialize(ContentDeserializer::<E>::new(content))
}

/// Named-field accessor over a [`Content::Map`]; what the derive macro
/// expands struct deserialization into. Unknown fields are ignored, like
/// serde's default behavior.
pub struct FieldMap {
    entries: Vec<(String, Content)>,
    ty: &'static str,
}

impl FieldMap {
    /// Build from a map-shaped `Content`; errors on any other shape.
    pub fn new<E: Error>(content: Content, ty: &'static str) -> Result<FieldMap, E> {
        match content {
            Content::Map(pairs) => {
                let mut entries = Vec::with_capacity(pairs.len());
                for (k, v) in pairs {
                    match k {
                        Content::Str(name) => entries.push((name, v)),
                        other => {
                            return Err(E::custom(format!(
                                "{ty}: non-string field key ({})",
                                other.kind()
                            )))
                        }
                    }
                }
                Ok(FieldMap { entries, ty })
            }
            other => Err(E::custom(format!(
                "{ty}: expected a map, found {}",
                other.kind()
            ))),
        }
    }

    fn take(&mut self, name: &str) -> Option<Content> {
        let idx = self.entries.iter().position(|(k, _)| k == name)?;
        Some(self.entries.swap_remove(idx).1)
    }

    /// Extract and deserialize a required field.
    pub fn field<'de, T: Deserialize<'de>, E: Error>(
        &mut self,
        name: &'static str,
    ) -> Result<T, E> {
        match self.take(name) {
            Some(c) => from_content(c)
                .map_err(|e: E| E::custom(format!("{}.{name}: {e}", self.ty))),
            None => Err(E::custom(format!("{}: missing field `{name}`", self.ty))),
        }
    }

    /// Extract a `#[serde(default)]` field, falling back to `T::default()`
    /// when absent.
    pub fn field_or_default<'de, T: Deserialize<'de> + Default, E: Error>(
        &mut self,
        name: &'static str,
    ) -> Result<T, E> {
        match self.take(name) {
            Some(c) => from_content(c)
                .map_err(|e: E| E::custom(format!("{}.{name}: {e}", self.ty))),
            None => Ok(T::default()),
        }
    }
}

/// Split an externally-tagged enum value into `(variant name, payload)`:
/// a bare string is a unit variant; a single-entry map is a variant with
/// payload.
pub fn variant_parts<E: Error>(content: Content) -> Result<(String, Option<Content>), E> {
    match content {
        Content::Str(name) => Ok((name, None)),
        Content::Map(mut pairs) if pairs.len() == 1 => {
            let (k, v) = pairs.pop().expect("len checked");
            match k {
                Content::Str(name) => Ok((name, Some(v))),
                other => Err(E::custom(format!(
                    "enum tag must be a string, found {}",
                    other.kind()
                ))),
            }
        }
        other => Err(E::custom(format!(
            "expected an enum (string or single-entry map), found {}",
            other.kind()
        ))),
    }
}

fn int_from<E: Error>(c: Content, what: &'static str) -> Result<i128, E> {
    match c {
        Content::I64(v) => Ok(v as i128),
        Content::U64(v) => Ok(v as i128),
        Content::F64(v) if v.fract() == 0.0 && v.abs() < 2e18 => Ok(v as i128),
        Content::F32(v) if v.fract() == 0.0 && v.abs() < 2e18 => Ok(v as i128),
        other => Err(E::custom(format!("expected {what}, found {}", other.kind()))),
    }
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = int_from::<D::Error>(d.deserialize_content()?, stringify!($t))?;
                <$t>::try_from(v).map_err(|_| {
                    <D::Error as Error>::custom(format!(
                        "integer {v} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}
de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_content()? {
            Content::Bool(b) => Ok(b),
            other => Err(<D::Error as Error>::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_content()? {
            Content::F32(v) => Ok(v),
            Content::F64(v) => Ok(v as f32),
            Content::I64(v) => Ok(v as f32),
            Content::U64(v) => Ok(v as f32),
            // Non-finite floats serialize as null (JSON has no NaN/Inf).
            Content::Null => Ok(f32::NAN),
            other => Err(<D::Error as Error>::custom(format!(
                "expected f32, found {}",
                other.kind()
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_content()? {
            Content::F32(v) => Ok(v as f64),
            Content::F64(v) => Ok(v),
            Content::I64(v) => Ok(v as f64),
            Content::U64(v) => Ok(v as f64),
            Content::Null => Ok(f64::NAN),
            other => Err(<D::Error as Error>::custom(format!(
                "expected f64, found {}",
                other.kind()
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_content()? {
            Content::Str(s) => Ok(s),
            other => Err(<D::Error as Error>::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_content()? {
            Content::Null => Ok(None),
            c => Ok(Some(from_content(c)?)),
        }
    }
}

fn seq_from<E: Error>(c: Content, what: &'static str) -> Result<Vec<Content>, E> {
    match c {
        Content::Seq(items) => Ok(items),
        other => Err(E::custom(format!("expected {what}, found {}", other.kind()))),
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        seq_from::<D::Error>(d.deserialize_content()?, "sequence")?
            .into_iter()
            .map(from_content)
            .collect()
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let items = seq_from::<D::Error>(d.deserialize_content()?, "array")?;
        if items.len() != N {
            return Err(<D::Error as Error>::custom(format!(
                "expected array of length {N}, found {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items
            .into_iter()
            .map(from_content)
            .collect::<Result<_, D::Error>>()?;
        parsed
            .try_into()
            .map_err(|_| <D::Error as Error>::custom("array length changed during parse"))
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let mut items = seq_from::<D::Error>(d.deserialize_content()?, "2-tuple")?;
        if items.len() != 2 {
            return Err(<D::Error as Error>::custom(format!(
                "expected 2-tuple, found {} elements",
                items.len()
            )));
        }
        let b = items.pop().expect("len checked");
        let a = items.pop().expect("len checked");
        Ok((from_content(a)?, from_content(b)?))
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let mut items = seq_from::<D::Error>(d.deserialize_content()?, "3-tuple")?;
        if items.len() != 3 {
            return Err(<D::Error as Error>::custom(format!(
                "expected 3-tuple, found {} elements",
                items.len()
            )));
        }
        let c = items.pop().expect("len checked");
        let b = items.pop().expect("len checked");
        let a = items.pop().expect("len checked");
        Ok((from_content(a)?, from_content(b)?, from_content(c)?))
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_content()? {
            Content::Map(pairs) => pairs
                .into_iter()
                .map(|(k, v)| Ok((from_content(k)?, from_content(v)?)))
                .collect(),
            other => Err(<D::Error as Error>::custom(format!(
                "expected map, found {}",
                other.kind()
            ))),
        }
    }
}
