//! Minimal stand-in for `serde`, built around a self-describing value tree.
//!
//! The workspace builds hermetically (no crates.io), so this crate
//! re-implements the slice of serde's API the toolkit uses. Instead of
//! serde's visitor-driven zero-copy model, everything funnels through one
//! owned value tree, [`de::Content`]: serializers lower Rust values into
//! `Content`, deserializers lift `Content` back into Rust values, and data
//! formats (see the sibling `serde_json` stub) only ever translate between
//! `Content` and text. That is slower than real serde but behaviorally
//! equivalent for the JSON checkpoint/artifact traffic this repo does.
//!
//! Supported surface: `Serialize`/`Deserialize` for the std types the
//! toolkit serializes, `Serializer`/`Deserializer` traits usable by
//! handwritten impls (e.g. `Tensor`'s), `serde::ser::SerializeStruct`,
//! `serde::de::Error`, and — behind the `derive` feature — the
//! `#[derive(Serialize, Deserialize)]` macros from the in-repo
//! `serde_derive` stub.

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
