//! Minimal stand-in for `rayon` built on `std::thread::scope`.
//!
//! The workspace builds hermetically (no crates.io access), so this crate
//! implements exactly the data-parallel surface the toolkit uses:
//!
//! * `slice.par_iter().enumerate().map(f).collect::<Vec<_>>()`
//! * `slice.par_chunks_mut(n).enumerate().for_each(f)`
//! * `(0..n).into_par_iter().map(f).collect::<Vec<_>>()`
//! * [`current_num_threads`]
//!
//! Semantics match rayon where it matters for this workspace: results are
//! returned **in input order** regardless of execution interleaving, and
//! closures must be `Sync` because they run from multiple threads. Work is
//! materialized eagerly and split into one contiguous block per worker
//! thread; with a single available core everything degrades to a plain
//! sequential loop with no thread spawns.

use std::num::NonZeroUsize;

/// Number of worker threads parallel operations will use (the machine's
/// available parallelism; rayon's default pool size).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Run `f` over `items`, preserving input order in the output.
///
/// Splits the items into at most `current_num_threads()` contiguous blocks
/// and maps each block on its own scoped thread. Falls back to a
/// sequential loop when only one thread is available or the input is
/// small.
fn map_ordered<T, U, F>(items: Vec<T>, f: &F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let threads = current_num_threads().min(items.len());
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    let n = items.len();
    let block = n.div_ceil(threads);
    let mut blocks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items.into_iter();
    while blocks.len() * block < n {
        blocks.push(items.by_ref().take(block).collect());
    }

    let mut out: Vec<Vec<U>> = Vec::with_capacity(blocks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = blocks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        for h in handles {
            out.push(h.join().expect("parallel worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

/// A materialized parallel iterator over `T` items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Pair each item with its index (input order).
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Lazily apply `f`; execution happens at `collect`/`for_each`.
    pub fn map<U, F>(self, f: F) -> ParMap<T, F>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Run `f` on every item across the worker threads.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        map_ordered(self.items, &|item| f(item));
    }

    /// Collect the items in input order.
    pub fn collect<C: From<Vec<T>>>(self) -> C {
        C::from(self.items)
    }
}

/// A parallel map pending execution.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, F> ParMap<T, F>
where
    T: Send,
{
    /// Execute the map across worker threads and collect in input order.
    pub fn collect<U, C>(self) -> C
    where
        U: Send,
        F: Fn(T) -> U + Sync,
        C: From<Vec<U>>,
    {
        C::from(map_ordered(self.items, &self.f))
    }

    /// Execute the map for its side effects.
    pub fn for_each<U, G>(self, g: G)
    where
        U: Send,
        F: Fn(T) -> U + Sync,
        G: Fn(U) + Sync,
    {
        let f = &self.f;
        map_ordered(self.items, &|item| g(f(item)));
    }
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Materialize into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// `par_iter` over shared references, mirroring rayon's reference trait.
pub trait IntoParallelRefIterator<'a> {
    /// Item type produced (a shared reference).
    type Item: Send;
    /// Materialize into a [`ParIter`] of references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Mutable chunked views over slices, mirroring rayon's slice trait.
pub trait ParallelSliceMut<T: Send> {
    /// Non-overlapping mutable chunks of `chunk_size` (last may be short).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// Glob import mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn enumerate_map_collect() {
        let v = vec!["a", "b", "c"];
        let out: Vec<(usize, &str)> = v.par_iter().enumerate().map(|(i, s)| (i, *s)).collect();
        assert_eq!(out, vec![(0, "a"), (1, "b"), (2, "c")]);
    }

    #[test]
    fn range_into_par_iter() {
        let out: Vec<usize> = (0..17usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<usize>>());
    }

    #[test]
    fn chunks_mut_for_each_writes_disjoint_regions() {
        let mut buf = vec![0u32; 103];
        buf.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for c in chunk.iter_mut() {
                *c = i as u32;
            }
        });
        for (j, v) in buf.iter().enumerate() {
            assert_eq!(*v, (j / 10) as u32);
        }
    }
}
