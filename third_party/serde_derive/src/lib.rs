//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The workspace builds hermetically (no crates.io), so this proc-macro
//! crate is written against `proc_macro` alone — no `syn`, no `quote`. It
//! parses just enough of the item grammar to cover the shapes the toolkit
//! actually derives on:
//!
//! * structs with named fields (honoring `#[serde(default)]`),
//! * single-field tuple structs (serialized transparently, like serde's
//!   newtype structs),
//! * enums whose variants are unit, newtype, or struct-like (externally
//!   tagged, like serde's default representation).
//!
//! Generics, tuple variants with more than one field, and the rest of
//! serde's attribute language are rejected with a compile-time panic so
//! accidental use fails loudly.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

struct Field {
    name: String,
    default: bool,
}

enum VariantShape {
    Unit,
    Newtype,
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Item {
    Struct { name: String, fields: Vec<Field> },
    Newtype { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

fn ident_str(t: &TokenTree) -> Option<String> {
    match t {
        TokenTree::Ident(id) => Some(id.to_string()),
        _ => None,
    }
}

fn is_punct(t: Option<&TokenTree>, c: char) -> bool {
    matches!(t, Some(TokenTree::Punct(p)) if p.as_char() == c)
}

/// True for `#[serde(default)]` (possibly among other serde args, which we
/// reject — only `default` is supported).
fn serde_default_attr(attr: &Group) -> bool {
    let toks: Vec<TokenTree> = attr.stream().into_iter().collect();
    match toks.first().and_then(ident_str).as_deref() {
        Some("serde") => {}
        _ => return false,
    }
    let args = match toks.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
        _ => panic!("serde stub derive: unsupported serde attribute form"),
    };
    for t in args.stream() {
        match &t {
            TokenTree::Ident(id) if id.to_string() == "default" => return true,
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            other => panic!("serde stub derive: unsupported serde attribute `{other}`"),
        }
    }
    false
}

/// Skip attributes and visibility at `*i`; returns whether a
/// `#[serde(default)]` attribute was seen.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) -> bool {
    let mut default = false;
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = toks.get(*i + 1) {
                    if serde_default_attr(g) {
                        default = true;
                    }
                }
                *i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return default,
        }
    }
}

fn parse_named_fields(g: &Group) -> Vec<Field> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < toks.len() {
        let default = skip_attrs_and_vis(&toks, &mut i);
        let name = ident_str(&toks[i]).expect("serde stub derive: expected field name");
        i += 1;
        assert!(
            is_punct(toks.get(i), ':'),
            "serde stub derive: expected `:` after field `{name}`"
        );
        i += 1;
        // Skip the type: everything up to a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        out.push(Field { name, default });
    }
    out
}

fn parse_variants(g: &Group, type_name: &str) -> Vec<Variant> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        let name = ident_str(&toks[i]).expect("serde stub derive: expected variant name");
        i += 1;
        let mut shape = VariantShape::Unit;
        match toks.get(i) {
            Some(TokenTree::Group(vg)) if vg.delimiter() == Delimiter::Parenthesis => {
                let payload_arity = count_tuple_fields(vg);
                assert!(
                    payload_arity == 1,
                    "serde stub derive: tuple variant {type_name}::{name} must have exactly one field"
                );
                shape = VariantShape::Newtype;
                i += 1;
            }
            Some(TokenTree::Group(vg)) if vg.delimiter() == Delimiter::Brace => {
                shape = VariantShape::Struct(parse_named_fields(vg));
                i += 1;
            }
            _ => {}
        }
        if is_punct(toks.get(i), ',') {
            i += 1;
        }
        out.push(Variant { name, shape });
    }
    out
}

/// Number of fields in a tuple-struct/newtype-variant parenthesized list
/// (top-level comma count, ignoring a trailing comma).
fn count_tuple_fields(g: &Group) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut pending = false;
    for t in g.stream() {
        match &t {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => {
                    depth += 1;
                    pending = true;
                }
                '>' => {
                    depth -= 1;
                    pending = true;
                }
                ',' if depth == 0 => {
                    if pending {
                        fields += 1;
                    }
                    pending = false;
                }
                '#' => {}
                _ => pending = true,
            },
            // Attribute bracket groups (doc comments) don't count as content.
            TokenTree::Group(g2) if g2.delimiter() == Delimiter::Bracket => {}
            _ => pending = true,
        }
    }
    if pending {
        fields += 1;
    }
    fields
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let kind = ident_str(&toks[i]).expect("serde stub derive: expected struct/enum");
    i += 1;
    let name = ident_str(&toks[i]).expect("serde stub derive: expected type name");
    i += 1;
    assert!(
        !is_punct(toks.get(i), '<'),
        "serde stub derive: generic type {name} unsupported"
    );
    match (kind.as_str(), toks.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => Item::Struct {
            fields: parse_named_fields(g),
            name,
        },
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            assert!(
                count_tuple_fields(g) == 1,
                "serde stub derive: tuple struct {name} must have exactly one field"
            );
            Item::Newtype { name }
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => Item::Enum {
            variants: parse_variants(g, &name),
            name,
        },
        _ => panic!("serde stub derive: unsupported item shape for {name}"),
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let mut body = String::new();
            for f in &fields {
                body.push_str(&format!(
                    "__st.serialize_field(\"{f}\", &self.{f})?;\n",
                    f = f.name
                ));
            }
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {{\n\
                         use serde::ser::SerializeStruct as _;\n\
                         let mut __st = serde::Serializer::serialize_struct(serializer, \"{name}\", {n})?;\n\
                         {body}\
                         __st.end()\n\
                     }}\n\
                 }}",
                n = fields.len(),
            )
        }
        Item::Newtype { name } => format!(
            "impl serde::Serialize for {name} {{\n\
                 fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {{\n\
                     serde::Serializer::serialize_newtype_struct(serializer, \"{name}\", &self.0)\n\
                 }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (idx, v) in variants.iter().enumerate() {
                match &v.shape {
                    VariantShape::Newtype => arms.push_str(&format!(
                        "{name}::{v}(__field) => serde::Serializer::serialize_newtype_variant(serializer, \"{name}\", {idx}u32, \"{v}\", __field),\n",
                        v = v.name,
                    )),
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{v} => serde::Serializer::serialize_unit_variant(serializer, \"{name}\", {idx}u32, \"{v}\"),\n",
                        v = v.name,
                    )),
                    VariantShape::Struct(fields) => {
                        let pat: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        let mut body = String::new();
                        for f in fields {
                            body.push_str(&format!(
                                "__sv.serialize_field(\"{f}\", {f})?;\n",
                                f = f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{v} {{ {pat} }} => {{\n\
                                 let mut __sv = serde::Serializer::serialize_struct_variant(serializer, \"{name}\", {idx}u32, \"{v}\", {n})?;\n\
                                 {body}\
                                 __sv.end()\n\
                             }}\n",
                            v = v.name,
                            pat = pat.join(", "),
                            n = fields.len(),
                        ));
                    }
                }
            }
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {{\n\
                         #[allow(unused_imports)]\n\
                         use serde::ser::SerializeStruct as _;\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().expect("serde stub derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let mut body = String::new();
            for f in &fields {
                let getter = if f.default { "field_or_default" } else { "field" };
                body.push_str(&format!("{f}: __map.{getter}(\"{f}\")?,\n", f = f.name));
            }
            format!(
                "impl<'de> serde::Deserialize<'de> for {name} {{\n\
                     fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {{\n\
                         let __content = serde::Deserializer::deserialize_content(deserializer)?;\n\
                         let mut __map = serde::de::FieldMap::new::<D::Error>(__content, \"{name}\")?;\n\
                         Ok({name} {{\n{body}}})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Newtype { name } => format!(
            "impl<'de> serde::Deserialize<'de> for {name} {{\n\
                 fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {{\n\
                     let __content = serde::Deserializer::deserialize_content(deserializer)?;\n\
                     Ok({name}(serde::de::from_content(__content)?))\n\
                 }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in &variants {
                match &v.shape {
                    VariantShape::Newtype => arms.push_str(&format!(
                        "(\"{v}\", Some(__p)) => Ok({name}::{v}(serde::de::from_content(__p)?)),\n",
                        v = v.name,
                    )),
                    VariantShape::Unit => arms.push_str(&format!(
                        "(\"{v}\", _) => Ok({name}::{v}),\n",
                        v = v.name,
                    )),
                    VariantShape::Struct(fields) => {
                        let mut body = String::new();
                        for f in fields {
                            let getter = if f.default { "field_or_default" } else { "field" };
                            body.push_str(&format!(
                                "{f}: __vm.{getter}(\"{f}\")?,\n",
                                f = f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "(\"{v}\", Some(__p)) => {{\n\
                                 let mut __vm = serde::de::FieldMap::new::<D::Error>(__p, \"{name}::{v}\")?;\n\
                                 Ok({name}::{v} {{\n{body}}})\n\
                             }}\n",
                            v = v.name,
                        ));
                    }
                }
            }
            format!(
                "impl<'de> serde::Deserialize<'de> for {name} {{\n\
                     fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {{\n\
                         let __content = serde::Deserializer::deserialize_content(deserializer)?;\n\
                         let (__variant, __payload) = serde::de::variant_parts::<D::Error>(__content)?;\n\
                         match (__variant.as_str(), __payload) {{\n\
                             {arms}\
                             __other => Err(<D::Error as serde::de::Error>::custom(format!(\n\
                                 \"invalid variant `{{}}` for {name}\", __other.0\n\
                             ))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().expect("serde stub derive: generated invalid Deserialize impl")
}
