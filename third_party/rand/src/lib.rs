//! Minimal, deterministic stand-in for the `rand` crate.
//!
//! This workspace builds in a hermetic environment with no crates.io
//! access, so the external dependencies are provided as in-repo stubs that
//! implement exactly the API surface the toolkit uses (see
//! `third_party/README.md`). This crate provides:
//!
//! * [`rngs::StdRng`] — a seedable xoshiro256++ generator (not the same
//!   stream as upstream `StdRng`; the toolkit only requires determinism
//!   given a seed, not stream compatibility),
//! * [`rngs::mock::StepRng`] — an arithmetic-sequence generator for tests,
//! * the [`RngCore`] / [`Rng`] / [`SeedableRng`] traits with the `gen`,
//!   `gen_range`, and `gen_bool` methods the toolkit calls,
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).

use std::ops::Range;

/// Low-level generator interface: a source of random 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a generator (the subset of
/// rand's `Standard` distribution the toolkit uses).
pub trait Standard: Sized {
    /// Draw one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1) with full f32 mantissa coverage.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * f32::sample(rng)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample of `T` (f32/f64 in `[0, 1)`, full-width integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a half-open range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (the only constructor the toolkit uses).
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for rand's `StdRng`;
    /// same determinism contract, different stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // Guard against the all-zero state (unreachable via splitmix,
            // but cheap to be safe).
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Test doubles.
    pub mod mock {
        use super::RngCore;

        /// Generator yielding an arithmetic sequence — rand's test mock.
        #[derive(Debug, Clone)]
        pub struct StepRng {
            v: u64,
            step: u64,
        }

        impl StepRng {
            /// Start at `initial`, advancing by `step` per draw.
            pub fn new(initial: u64, step: u64) -> Self {
                StepRng { v: initial, step }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }
            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.step);
                out
            }
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extension trait: in-place Fisher–Yates shuffle.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// Uniformly pick one element (None when empty).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Re-exports mirroring rand's prelude layout used around the workspace.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::rngs::mock::StepRng;

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(-3.0f32..3.0);
            assert!((-3.0..3.0).contains(&v));
            let i = rng.gen_range(0usize..5);
            assert!(i < 5);
            let n = rng.gen_range(-7i32..-2);
            assert!((-7..-2).contains(&n));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut rng = StdRng::seed_from_u64(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }

    #[test]
    fn step_rng_counts() {
        let mut r = StepRng::new(0, 1);
        assert_eq!(r.next_u64(), 0);
        assert_eq!(r.next_u64(), 1);
        assert_eq!(r.next_u64(), 2);
    }
}
