//! The OCP-style and trajectory energy tasks: the two dataset families the
//! paper integrates beyond property prediction (adsorption energies on
//! slabs, per-frame trajectory energies) must train through the same task
//! machinery.

use matsciml::prelude::*;

fn trainer(steps: u64) -> Trainer {
    Trainer::new(TrainConfig {
        world_size: 2,
        per_rank_batch: 4,
        steps,
        base_lr: 1e-3,
        warmup_epochs: 1,
        eval_every: steps - 1,
        eval_batches: 2,
        parallel_ranks: false,
        clip_norm: Some(10.0),
        weight_decay: 0.0,
        ..Default::default()
    })
}

#[test]
fn oc20_adsorption_energy_task_trains() {
    let ds = SyntheticOc20::new(128, 1);
    let pipeline = Compose::standard(4.5, Some(12));
    let train_dl = DataLoader::new(&ds, Some(&pipeline), Split::Train, 0.2, 8, 1);
    let val_dl = DataLoader::new(&ds, Some(&pipeline), Split::Val, 0.2, 16, 1);
    let (mu, sigma) = target_stats(&ds, TargetKind::Energy, 64).unwrap();
    let mut model = TaskModel::egnn(
        EgnnConfig::small(12),
        &[TaskHeadConfig::regression(DatasetId::Oc20, TargetKind::Energy, 24, 2)
            .with_normalization(mu, sigma)],
        1,
    );
    let log = trainer(25).train(&mut model, &train_dl, Some(&val_dl));
    let mae = log.final_val().and_then(|v| v.get("oc20/energy/mae")).unwrap();
    assert!(mae.is_finite() && mae > 0.0);
    // Slab graphs are larger (13+ atoms); make sure edges were built.
    let s = train_dl.get(0);
    assert!(s.graph.num_edges() > 20);
}

#[test]
fn lips_trajectory_energy_is_learnable_quickly() {
    // The harmonic LiPS energy is a clean function of displacement —
    // a small model should cut the error substantially within ~60 steps.
    let ds = SyntheticLips::new(256, 2);
    let pipeline = Compose::standard(4.5, Some(12));
    let train_dl = DataLoader::new(&ds, Some(&pipeline), Split::Train, 0.2, 8, 2);
    let val_dl = DataLoader::new(&ds, Some(&pipeline), Split::Val, 0.2, 16, 2);
    let (mu, sigma) = target_stats(&ds, TargetKind::Energy, 64).unwrap();
    let mut model = TaskModel::egnn(
        EgnnConfig::small(12),
        &[TaskHeadConfig {
            dropout: 0.0,
            ..TaskHeadConfig::regression(DatasetId::Lips, TargetKind::Energy, 24, 2)
                .with_normalization(mu, sigma)
        }],
        2,
    );
    let log = trainer(60).train(&mut model, &train_dl, Some(&val_dl));
    let series = log.val_series("lips/energy/mae");
    let first = series.first().unwrap().1;
    let best = log.best_val("lips/energy/mae").unwrap();
    assert!(
        best < first,
        "trajectory energy should improve: first {first}, best {best}"
    );
}

#[test]
fn oc20_oc22_joint_training_routes_by_dataset() {
    // Both OCP surrogates share the Energy target but are distinct
    // datasets; two heads must not cross-contaminate.
    let merged = ConcatDataset::new(vec![
        Box::new(SyntheticOc20::new(64, 3)),
        Box::new(SyntheticOc22::new(64, 4)),
    ]);
    let pipeline = Compose::standard(4.5, Some(12));
    let train_dl = DataLoader::new(&merged, Some(&pipeline), Split::Train, 0.2, 8, 3);
    let val_dl = DataLoader::new(&merged, Some(&pipeline), Split::Val, 0.2, 16, 3);
    let mut model = TaskModel::egnn(
        EgnnConfig::small(12),
        &[
            TaskHeadConfig::regression(DatasetId::Oc20, TargetKind::Energy, 24, 1),
            TaskHeadConfig::regression(DatasetId::Oc22, TargetKind::Energy, 24, 1),
        ],
        3,
    );
    let log = trainer(10).train(&mut model, &train_dl, Some(&val_dl));
    let v = log.final_val().unwrap();
    assert!(v.get("oc20/energy/mae").is_some());
    assert!(v.get("oc22/energy/mae").is_some());
}
