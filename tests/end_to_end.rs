//! End-to-end training pipelines across the whole stack. Budgets are kept
//! tiny so the suite stays fast in debug builds; the bench binaries cover
//! full-scale behaviour.

use matsciml::prelude::*;

fn small_trainer(steps: u64, base_lr: f32) -> Trainer {
    Trainer::new(TrainConfig {
        world_size: 2,
        per_rank_batch: 4,
        steps,
        base_lr,
        scale_lr_by_world: true,
        warmup_epochs: 1,
        gamma: 0.9,
        weight_decay: 0.0,
        eps: 1e-8,
        clip_norm: Some(10.0),
        eval_every: steps.max(1) - 1,
        eval_batches: 2,
        parallel_ranks: false,
        seed: 1,
        early_stop: None,
        skip_nonfinite_updates: false,
        overlap_comm: false,
        prefetch_data: false,
        checkpoint_every: 0,
        checkpoint_dir: None,
        readahead_threads: 0,
        readahead_depth: 0,
    })
}

#[test]
fn single_task_regression_learns() {
    let ds = SyntheticMaterialsProject::new(160, 1);
    let pipeline = Compose::standard(4.5, Some(12));
    let train_dl = DataLoader::new(&ds, Some(&pipeline), Split::Train, 0.2, 8, 1);
    let val_dl = DataLoader::new(&ds, Some(&pipeline), Split::Val, 0.2, 16, 1);
    let mut model = TaskModel::egnn(
        EgnnConfig::small(12),
        &[TaskHeadConfig {
            dropout: 0.0,
            ..TaskHeadConfig::regression(DatasetId::MaterialsProject, TargetKind::BandGap, 24, 1)
        }],
        2,
    );
    let log = small_trainer(30, 2e-3).train(&mut model, &train_dl, Some(&val_dl));
    let early: f32 = log.records[..5].iter().map(|r| r.train.get("loss").unwrap()).sum::<f32>() / 5.0;
    let late: f32 = log.records[25..].iter().map(|r| r.train.get("loss").unwrap()).sum::<f32>() / 5.0;
    assert!(late < early, "training loss should fall: {early} -> {late}");
    assert!(model.params.all_finite(), "parameters must stay finite");
}

#[test]
fn symmetry_pretraining_beats_chance_quickly() {
    let ds = SymmetryDataset::new(512, 2);
    let pipeline = Compose::standard(1.2, Some(16));
    let train_dl = DataLoader::new(&ds, Some(&pipeline), Split::Train, 0.1, 16, 2);
    let val_dl = DataLoader::new(&ds, Some(&pipeline), Split::Val, 0.1, 32, 2);
    let mut model = TaskModel::egnn(
        EgnnConfig::small(12),
        &[TaskHeadConfig::symmetry(24, 1, ds.num_classes())],
        3,
    );
    let trainer = Trainer::new(TrainConfig {
        world_size: 4,
        per_rank_batch: 4,
        steps: 40,
        base_lr: 1e-3,
        warmup_epochs: 1,
        eval_every: 39,
        eval_batches: 2,
        parallel_ranks: false,
        clip_norm: Some(10.0),
        weight_decay: 0.0,
        ..Default::default()
    });
    let log = trainer.train(&mut model, &train_dl, Some(&val_dl));
    // 40 steps is far too short to beat chance on held-out data (the bench
    // harness shows that takes ~500 steps), but the *training* CE must
    // already be moving down from its exact chance-level start of ln 32.
    let first: f32 = log.records[..5]
        .iter()
        .map(|r| r.train.get("symmetry/sym/ce").unwrap())
        .sum::<f32>()
        / 5.0;
    let last: f32 = log.records[35..]
        .iter()
        .map(|r| r.train.get("symmetry/sym/ce").unwrap())
        .sum::<f32>()
        / 5.0;
    assert!(last < first, "training CE should fall: {first} -> {last}");
    let val_ce = log.final_val().and_then(|v| v.get("symmetry/sym/ce")).unwrap();
    assert!(val_ce.is_finite());
}

#[test]
fn encoder_transfer_changes_downstream_trajectory() {
    // Fine-tuning from a (briefly) pretrained encoder must give a
    // different — and here, not worse at start — trajectory than scratch.
    let sym = SymmetryDataset::new(256, 3);
    let sym_pipe = Compose::standard(1.2, Some(16));
    let sym_train = DataLoader::new(&sym, Some(&sym_pipe), Split::Train, 0.1, 8, 3);
    let mut pre = TaskModel::egnn(
        EgnnConfig::small(12),
        &[TaskHeadConfig::symmetry(24, 1, sym.num_classes())],
        4,
    );
    small_trainer(15, 1e-3).train(&mut pre, &sym_train, None);

    let ds = SyntheticMaterialsProject::new(96, 4);
    let pipeline = Compose::standard(4.5, Some(12));
    let train_dl = DataLoader::new(&ds, Some(&pipeline), Split::Train, 0.2, 8, 4);
    let heads = [TaskHeadConfig::regression(
        DatasetId::MaterialsProject,
        TargetKind::BandGap,
        24,
        1,
    )];

    let run = |transfer: bool| {
        let mut model = TaskModel::egnn(EgnnConfig::small(12), &heads, 5);
        if transfer {
            model.load_pretrained_encoder(&pre);
        }
        let log = small_trainer(6, 1e-3).train(&mut model, &train_dl, None);
        log.records
            .iter()
            .map(|r| r.train.get("loss").unwrap())
            .collect::<Vec<f32>>()
    };
    let with = run(true);
    let without = run(false);
    assert_ne!(with, without, "transfer must change the loss trajectory");
}

#[test]
fn multitask_multidataset_end_to_end() {
    let merged = ConcatDataset::new(vec![
        Box::new(SyntheticMaterialsProject::new(96, 5)),
        Box::new(SyntheticCarolina::new(48, 6)),
    ]);
    let pipeline = Compose::standard(4.5, Some(12));
    let train_dl = DataLoader::new(&merged, Some(&pipeline), Split::Train, 0.2, 8, 5);
    let val_dl = DataLoader::new(&merged, Some(&pipeline), Split::Val, 0.2, 16, 5);
    let heads = [
        TaskHeadConfig::regression(DatasetId::MaterialsProject, TargetKind::BandGap, 24, 1),
        TaskHeadConfig::binary(DatasetId::MaterialsProject, TargetKind::Stability, 24, 1),
        TaskHeadConfig::regression(DatasetId::Carolina, TargetKind::FormationEnergy, 24, 1),
    ];
    let mut model = TaskModel::egnn(EgnnConfig::small(12), &heads, 6);
    let log = small_trainer(12, 1e-3).train(&mut model, &train_dl, Some(&val_dl));
    let v = log.final_val().expect("validation ran");
    // All three heads must report on the mixed validation stream.
    assert!(v.get("materials-project/band_gap/mae").is_some());
    assert!(v.get("materials-project/stability/bce").is_some());
    assert!(v.get("carolina/e_form/mae").is_some());
}

#[test]
fn runs_are_bitwise_reproducible_sequentially() {
    let run = || {
        let ds = SyntheticMaterialsProject::new(64, 7);
        let pipeline = Compose::standard(4.5, Some(12));
        let train_dl = DataLoader::new(&ds, Some(&pipeline), Split::Train, 0.0, 8, 7);
        let mut model = TaskModel::egnn(
            EgnnConfig::small(8),
            &[TaskHeadConfig::regression(DatasetId::MaterialsProject, TargetKind::BandGap, 16, 1)],
            8,
        );
        let log = small_trainer(8, 1e-3).train(&mut model, &train_dl, None);
        (
            model.params.value_norm(),
            log.records.iter().map(|r| r.train.get("loss").unwrap()).collect::<Vec<_>>(),
        )
    };
    let (n1, l1) = run();
    let (n2, l2) = run();
    assert_eq!(n1, n2, "parameter state must be reproducible");
    assert_eq!(l1, l2, "loss trajectory must be reproducible");
}

#[test]
fn ddp_world_size_changes_only_effective_batch_not_api() {
    // The same loader stream trains under different world sizes as long as
    // the loader batch matches N*B.
    for (world, per_rank) in [(1usize, 8usize), (4, 2), (8, 1)] {
        let ds = SyntheticMaterialsProject::new(64, 9);
        let pipeline = Compose::standard(4.5, Some(12));
        let train_dl =
            DataLoader::new(&ds, Some(&pipeline), Split::Train, 0.0, world * per_rank, 9);
        let mut model = TaskModel::egnn(
            EgnnConfig::small(8),
            &[TaskHeadConfig::regression(DatasetId::MaterialsProject, TargetKind::BandGap, 16, 1)],
            10,
        );
        let trainer = Trainer::new(TrainConfig {
            world_size: world,
            per_rank_batch: per_rank,
            steps: 4,
            parallel_ranks: false,
            eval_every: 0,
            ..Default::default()
        });
        let log = trainer.train(&mut model, &train_dl, None);
        assert_eq!(log.records.len(), 4, "world={world}");
    }
}
