//! Cross-crate consistency: contracts that span crate boundaries and
//! cannot be checked inside any single crate.

use matsciml::datasets::elements;
use matsciml::prelude::*;

#[test]
fn model_vocab_matches_element_table() {
    // models::input_vocab_default is a decoupled constant; it must track
    // the dataset crate's species table.
    assert_eq!(
        matsciml::models::input_vocab_default(),
        elements::NUM_SPECIES,
        "models' default embedding vocabulary diverged from the element table"
    );
}

#[test]
fn every_dataset_embeds_without_panic() {
    let model = TaskModel::egnn(
        EgnnConfig::small(8),
        &[TaskHeadConfig::symmetry(16, 1, 32)],
        0,
    );
    let pipeline = Compose::standard(4.5, Some(12));
    let sources: Vec<Box<dyn Dataset>> = vec![
        Box::new(SyntheticMaterialsProject::new(4, 1)),
        Box::new(SyntheticCarolina::new(4, 2)),
        Box::new(SyntheticOc20::new(4, 3)),
        Box::new(SyntheticOc22::new(4, 4)),
        Box::new(SyntheticLips::new(4, 5)),
        Box::new(SymmetryDataset::new(64, 6)),
    ];
    for ds in &sources {
        let samples: Vec<Sample> = (0..4).map(|i| pipeline.apply(ds.sample(i))).collect();
        let emb = model.embed(&samples);
        assert_eq!(emb.rows(), 4, "{:?}", ds.id());
        assert!(emb.all_finite(), "{:?} produced non-finite embeddings", ds.id());
    }
}

#[test]
fn species_indices_stay_inside_embedding_table() {
    // Every synthetic generator must emit species indices < NUM_SPECIES,
    // or the embedding gather panics at train time.
    let sources: Vec<Box<dyn Dataset>> = vec![
        Box::new(SyntheticMaterialsProject::new(50, 11)),
        Box::new(SyntheticCarolina::new(50, 12)),
        Box::new(SyntheticOc20::new(50, 13)),
        Box::new(SyntheticOc22::new(50, 14)),
        Box::new(SyntheticLips::new(20, 15)),
        Box::new(SymmetryDataset::new(64, 16)),
    ];
    for ds in &sources {
        for i in 0..ds.len().min(50) {
            let s = ds.sample(i);
            assert!(
                s.graph.species.iter().all(|&sp| (sp as usize) < elements::NUM_SPECIES),
                "{:?} sample {i} has out-of-vocabulary species",
                ds.id()
            );
        }
    }
}

#[test]
fn transform_pipeline_feeds_collate_feeds_model() {
    // point cloud → transforms → collate → EGNN forward, across a batch
    // that mixes datasets of very different sizes.
    let mp = SyntheticMaterialsProject::new(4, 21);
    let lips = SyntheticLips::new(4, 22);
    let pipeline = Compose::standard(4.5, Some(12));
    let samples = vec![
        pipeline.apply(mp.sample(0)),
        pipeline.apply(lips.sample(0)),
        pipeline.apply(mp.sample(1)),
    ];
    let batch = collate(&samples);
    assert_eq!(batch.input.num_graphs, 3);
    // Edges exist and stay within their graphs.
    assert!(batch.input.num_edges() > 0);
    for (&s, &d) in batch.input.src.iter().zip(batch.input.dst.iter()) {
        assert_eq!(
            batch.input.graph_ids[s as usize],
            batch.input.graph_ids[d as usize]
        );
    }
}

#[test]
fn checkpoint_roundtrip_preserves_predictions() {
    // ParamSet JSON checkpointing (used by the bench pretraining cache)
    // must reproduce identical model outputs.
    let mp = SyntheticMaterialsProject::new(4, 31);
    let pipeline = Compose::standard(4.5, Some(12));
    let samples: Vec<Sample> = (0..4).map(|i| pipeline.apply(mp.sample(i))).collect();
    let model = TaskModel::egnn(
        EgnnConfig::small(8),
        &[TaskHeadConfig::regression(DatasetId::MaterialsProject, TargetKind::BandGap, 16, 1)],
        7,
    );
    let before = model.predict(&samples, 0);

    let json = serde_json::to_string(&model.params).unwrap();
    let restored: ParamSet = serde_json::from_str(&json).unwrap();
    let mut model2 = TaskModel::egnn(
        EgnnConfig::small(8),
        &[TaskHeadConfig::regression(DatasetId::MaterialsProject, TargetKind::BandGap, 16, 1)],
        999, // different init, fully overwritten below
    );
    model2.params.copy_values_from(&restored);
    let after = model2.predict(&samples, 0);
    assert_eq!(before, after);
}

#[test]
fn umap_runs_on_real_encoder_embeddings() {
    let model = TaskModel::egnn(
        EgnnConfig::small(8),
        &[TaskHeadConfig::symmetry(16, 1, 32)],
        3,
    );
    let pipeline = Compose::standard(4.5, Some(12));
    let mp = SyntheticMaterialsProject::new(30, 41);
    let lips = SyntheticLips::new(30, 42);
    let mut rows: Vec<f32> = Vec::new();
    let mut labels = Vec::new();
    for (li, ds) in [&mp as &dyn Dataset, &lips as &dyn Dataset].iter().enumerate() {
        let samples: Vec<Sample> = (0..30).map(|i| pipeline.apply(ds.sample(i))).collect();
        let emb = model.embed(&samples);
        rows.extend_from_slice(emb.as_slice());
        labels.extend(std::iter::repeat(li).take(30));
    }
    let data = Tensor::from_vec(&[60, rows.len() / 60], rows).unwrap();
    let umap = Umap::new(UmapConfig {
        n_neighbors: 8,
        n_epochs: 30,
        seed: 1,
        ..UmapConfig::default()
    });
    let emb2d = umap.fit_transform(&data);
    assert_eq!(emb2d.shape(), &[60, 2]);
    assert!(emb2d.all_finite());
    // LiPS frames are near-identical structures; even an untrained encoder
    // maps them nearly on top of each other, so they must cluster apart
    // from the diverse MP structures.
    let sep = centroid_separation(&emb2d, &labels);
    assert!(sep.is_finite());
}
