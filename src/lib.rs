//! Workspace-root package for the Open MatSci ML Toolkit reproduction.
//!
//! This crate exists to host the cross-crate integration tests in `tests/`
//! and the runnable examples in `examples/`. The actual library surface
//! lives in the [`matsciml`] facade crate and the `matsciml-*` crates it
//! re-exports.

pub use matsciml;
