#!/usr/bin/env bash
# Tier-1 verify path (ROADMAP.md) plus the documentation gate.
#
#   ./scripts/verify.sh          # build + tests + doc gate
#
# The doc gate is scoped to the matsciml crates: the hermetic stubs under
# third_party/ intentionally carry minimal docs and are not held to the
# gate. The clippy gate covers the whole workspace (stubs included).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build =="
cargo build --release

echo "== lint gate: clippy, warnings are errors =="
cargo clippy --workspace -- -D warnings

echo "== bench gate: benches compile =="
cargo bench -p matsciml-bench --no-run

echo "== tier-1: tests (root package) =="
cargo test -q

echo "== workspace tests =="
cargo test -q --workspace

echo "== tier-1: tests again with the SIMD lane tier disabled =="
# The scalar fallback is a first-class configuration (non-x86 targets,
# MATSCIML_SIMD=0 escape hatch) and must stay bit-identical to the
# vector path — the whole suite runs green in both modes.
MATSCIML_SIMD=0 cargo test -q
MATSCIML_SIMD=0 cargo test -q --workspace

echo "== reduced-precision tier: forced off via env, suite stays exact =="
# MATSCIML_INFER_PRECISION is the serve-side opt-in for the f16/bf16
# wide-FMA tier (docs/SERVING.md). Forcing f32 must be a no-op — the
# tier defaults off and the training contract never routes through it —
# so the exactness-sensitive crates run green with the pin applied.
MATSCIML_INFER_PRECISION=f32 cargo test -q -p matsciml-tensor -p matsciml-train

echo "== streaming fallbacks: read-ahead off, mmap off =="
# Synchronous loading (MATSCIML_READAHEAD=0) and buffered shard storage
# (MATSCIML_SHARD_MMAP=0) are first-class configurations; the data layer
# and its trainer integration must stay green — and bit-identical — in
# both (docs/SHARD_FORMAT.md).
MATSCIML_READAHEAD=0 cargo test -q -p matsciml-datasets
MATSCIML_READAHEAD=0 cargo test -q -p matsciml-train --test stream_determinism
MATSCIML_SHARD_MMAP=0 cargo test -q -p matsciml-datasets

echo "== batch-pipeline fallbacks: graph cache off, worker collate off =="
# The cross-epoch graph cache (MATSCIML_GRAPH_CACHE=0) and worker-side
# collation (MATSCIML_WORKER_COLLATE=0) are opt-outs that must leave
# every trajectory bit-identical — the pipeline matrix and the data
# layer run green with each tier forced off (docs/ARCHITECTURE.md,
# "The zero-recompute batch pipeline").
MATSCIML_GRAPH_CACHE=0 cargo test -q -p matsciml-graph -p matsciml-datasets
MATSCIML_GRAPH_CACHE=0 cargo test -q -p matsciml-train --test stream_determinism
MATSCIML_WORKER_COLLATE=0 cargo test -q -p matsciml-train --test pipeline_bitwise

echo "== bench artifacts: every BENCH_*.json named in EXPERIMENTS.md exists =="
while read -r artifact; do
  [[ -f "$artifact" ]] || {
    echo "verify: EXPERIMENTS.md references $artifact but it is missing from the repo root" >&2
    exit 1
  }
done < <(grep -o 'BENCH_[A-Za-z0-9_]*\.json' EXPERIMENTS.md | sort -u)
# The serving bench must stay indexed (its section is the acceptance
# record for the inference-server PR).
grep -q 'BENCH_serve\.json' EXPERIMENTS.md || {
  echo "verify: EXPERIMENTS.md no longer names BENCH_serve.json" >&2
  exit 1
}
# The streaming bench must stay indexed (its section is the acceptance
# record for the sharded-datasets PR).
grep -q 'BENCH_stream\.json' EXPERIMENTS.md || {
  echo "verify: EXPERIMENTS.md no longer names BENCH_stream.json" >&2
  exit 1
}
# The reduced-precision bench must stay indexed (its section is the
# acceptance record for the f16/bf16 inference-tier PR), and its
# artifact must carry the gated speedup + tolerance fields.
grep -q 'BENCH_infer\.json' EXPERIMENTS.md || {
  echo "verify: EXPERIMENTS.md no longer names BENCH_infer.json" >&2
  exit 1
}
if [[ -f BENCH_infer.json ]] && command -v jq >/dev/null; then
  jq -e '.f16_speedup and .bf16_speedup and (.arms | length == 3)' BENCH_infer.json >/dev/null || {
    echo "verify: BENCH_infer.json is missing the gated speedup/arm fields" >&2
    exit 1
  }
fi
# The batch-pipeline bench must stay indexed (its section is the
# acceptance record for the zero-recompute pipeline PR), and its
# artifact must carry the asserted speedup and the bit-identity flag.
grep -q 'BENCH_pipeline\.json' EXPERIMENTS.md || {
  echo "verify: EXPERIMENTS.md no longer names BENCH_pipeline.json" >&2
  exit 1
}
if [[ -f BENCH_pipeline.json ]] && command -v jq >/dev/null; then
  jq -e '.speedup >= 1.25 and .loss_bits_match and .speedup_cached' BENCH_pipeline.json >/dev/null || {
    echo "verify: BENCH_pipeline.json is missing the asserted speedup/bit-identity fields" >&2
    exit 1
  }
fi

echo "== doc links: README/ARCHITECTURE and docs/*.md agree =="
# Every docs/*.md referenced from README.md or docs/ARCHITECTURE.md must
# exist, and every file in docs/ must be reachable from one of the two —
# so a renamed or orphaned doc fails the gate instead of rotting.
while read -r doc; do
  [[ -f "docs/$doc" || -f "$doc" ]] || {
    echo "verify: README/ARCHITECTURE reference $doc but it exists neither in docs/ nor at the repo root" >&2
    exit 1
  }
done < <({ grep -o 'docs/[A-Za-z0-9_]*\.md' README.md | sed 's|^docs/||'
           grep -o '[A-Za-z0-9_]*\.md' docs/ARCHITECTURE.md
         } | sort -u)
for doc in docs/*.md; do
  base=$(basename "$doc")
  if ! grep -q "$base" README.md && ! grep -q "$base" docs/ARCHITECTURE.md; then
    echo "verify: $doc is not referenced from README.md or docs/ARCHITECTURE.md" >&2
    exit 1
  fi
done

MATSCIML_CRATES=(
  matsciml-tensor matsciml-autograd matsciml-nn matsciml-opt
  matsciml-graph matsciml-symmetry matsciml-datasets matsciml-models
  matsciml-obs matsciml-ckpt matsciml-train matsciml-umap matsciml
  matsciml-cli matsciml-bench
)

echo "== doc gate: cargo doc --no-deps, warnings are errors =="
pkgs=()
for c in "${MATSCIML_CRATES[@]}"; do pkgs+=(-p "$c"); done
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q "${pkgs[@]}"

echo "== doc gate: doctests =="
cargo test -q --doc -p matsciml-obs -p matsciml-train

echo "verify: OK"
