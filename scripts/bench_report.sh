#!/usr/bin/env bash
# Merge the BENCH_*.json artifacts at the repo root into one performance
# trajectory table and append it to EXPERIMENTS.md.
#
#   cargo bench -p matsciml-bench --bench fwdbwd           # BENCH_fwdbwd.json
#   cargo bench -p matsciml-bench --bench allreduce        # BENCH_allreduce.json
#   cargo bench -p matsciml-bench --bench overlap          # BENCH_overlap.json
#   cargo bench -p matsciml-bench --bench message_passing  # BENCH_msgpass.json
#   cargo bench -p matsciml-bench --bench simd              # BENCH_simd.json
#   cargo bench -p matsciml-bench --bench serve             # BENCH_serve.json
#   cargo bench -p matsciml-bench --bench stream            # BENCH_stream.json
#   cargo bench -p matsciml-bench --bench infer             # BENCH_infer.json
#   cargo bench -p matsciml-bench --bench pipeline          # BENCH_pipeline.json
#   ./scripts/bench_report.sh
#
# Idempotent: the generated section lives between marker comments and is
# replaced wholesale on re-run, so stale rows never accumulate.
set -euo pipefail
cd "$(dirname "$0")/.."

command -v jq >/dev/null || { echo "bench_report: jq required" >&2; exit 1; }

BEGIN_MARK='<!-- bench-trajectory:begin -->'
END_MARK='<!-- bench-trajectory:end -->'

rows=""
add_row() { rows+="| $1 | $2 | $3 | $4 | $5 | $6 |"$'\n'; }

# Cumulative speedup vs the original seed hot path: each optimized arm
# already contains every earlier PR's gains, so later rows multiply
# their own speedup by the chain they stand on (fwdbwd for the rank-step
# schedulers, msgpass-vs-seed for the single-rank kernel tiers).
mul() { jq -n --argjson a "$1" --argjson b "$2" '$a * $b * 100 | round / 100'; }

if [[ -f BENCH_fwdbwd.json ]]; then
  add_row "fwdbwd (1 rank, hidden $(jq -r .hidden BENCH_fwdbwd.json))" \
    "seed → pooled+fused" \
    "$(jq -r '.seed.steps_per_sec | . * 100 | round / 100' BENCH_fwdbwd.json)" \
    "$(jq -r '.pooled.steps_per_sec | . * 100 | round / 100' BENCH_fwdbwd.json)" \
    "$(jq -r '.speedup | . * 100 | round / 100' BENCH_fwdbwd.json)x" \
    "$(jq -r '.speedup | . * 100 | round / 100' BENCH_fwdbwd.json)x"
fi

if [[ -f BENCH_allreduce.json ]]; then
  while IFS=$'\t' read -r world naive bucketed speedup; do
    add_row "allreduce (world $world)" "naive → bucketed" "$naive" "$bucketed" "${speedup}x" "—"
  done < <(jq -r '.rows[] | [
      .world,
      (.naive_steps_per_sec    * 100 | round / 100),
      (.bucketed_steps_per_sec * 100 | round / 100),
      (.speedup                * 100 | round / 100)
    ] | @tsv' BENCH_allreduce.json)
fi

if [[ -f BENCH_overlap.json ]]; then
  gate=$(jq -r 'if .speedup_asserted then "" else " (single-core: gate off)" end' BENCH_overlap.json)
  cum_overlap="—"
  if [[ -f BENCH_fwdbwd.json ]]; then
    cum_overlap="$(mul "$(jq .speedup BENCH_overlap.json)" "$(jq .speedup BENCH_fwdbwd.json)")x"
  fi
  add_row "overlap (world $(jq -r .world BENCH_overlap.json), hidden $(jq -r .hidden BENCH_overlap.json))" \
    "sequential → overlapped$gate" \
    "$(jq -r '.sequential_steps_per_sec | . * 100 | round / 100' BENCH_overlap.json)" \
    "$(jq -r '.overlapped_steps_per_sec | . * 100 | round / 100' BENCH_overlap.json)" \
    "$(jq -r '.speedup | . * 100 | round / 100' BENCH_overlap.json)x" \
    "$cum_overlap"
fi

if [[ -f BENCH_msgpass.json ]]; then
  add_row "message passing (1 rank, hidden $(jq -r .hidden BENCH_msgpass.json), $(jq -r .edges BENCH_msgpass.json) edges)" \
    "seed → fused edge pipeline" \
    "$(jq -r '.seed.steps_per_sec | . * 100 | round / 100' BENCH_msgpass.json)" \
    "$(jq -r '.fused.steps_per_sec | . * 100 | round / 100' BENCH_msgpass.json)" \
    "$(jq -r '.speedup_vs_seed | . * 100 | round / 100' BENCH_msgpass.json)x" \
    "$(jq -r '.speedup_vs_seed | . * 100 | round / 100' BENCH_msgpass.json)x"
  add_row "message passing (edge lowering only)" \
    "generic pooled → fused" \
    "$(jq -r '.baseline.steps_per_sec | . * 100 | round / 100' BENCH_msgpass.json)" \
    "$(jq -r '.fused.steps_per_sec | . * 100 | round / 100' BENCH_msgpass.json)" \
    "$(jq -r '.speedup_vs_baseline | . * 100 | round / 100' BENCH_msgpass.json)x" \
    "—"
fi

if [[ -f BENCH_simd.json ]]; then
  # The scalar arm of the simd bench already runs the fused + pooled
  # pipeline, so its gain compounds on the msgpass-vs-seed chain.
  cum_simd="$(jq -r '.speedup | . * 100 | round / 100' BENCH_simd.json)x"
  if [[ -f BENCH_msgpass.json ]]; then
    cum_simd="$(mul "$(jq .speedup BENCH_simd.json)" "$(jq .speedup_vs_seed BENCH_msgpass.json)")x"
  fi
  add_row "simd (1 rank, hidden $(jq -r .hidden BENCH_simd.json))" \
    "scalar kernels → simd lanes" \
    "$(jq -r '.scalar.steps_per_sec | . * 100 | round / 100' BENCH_simd.json)" \
    "$(jq -r '.simd.steps_per_sec | . * 100 | round / 100' BENCH_simd.json)" \
    "$(jq -r '.speedup | . * 100 | round / 100' BENCH_simd.json)x" \
    "$cum_simd"
fi

if [[ -f BENCH_serve.json ]]; then
  # Serving measures requests/s, not steps/s, and its baseline (batch-of-
  # one serving) is not the seed training path — no cumulative column.
  sat=$(jq '.loads | max_by(.clients)' BENCH_serve.json)
  add_row "serve ($(jq -r '.single.requests' <<<"$sat") reqs, $(jq -r .workers BENCH_serve.json) workers, $(jq '.clients' <<<"$sat") clients)" \
    "single → batched (req/s)" \
    "$(jq -r '.single.throughput_rps * 100 | round / 100' <<<"$sat")" \
    "$(jq -r '.batched.throughput_rps * 100 | round / 100' <<<"$sat")" \
    "$(jq -r '.speedup * 100 | round / 100' <<<"$sat")x" \
    "—"
fi

if [[ -f BENCH_stream.json ]]; then
  # Streaming trades nothing for bounded memory: the arms compare the
  # sharded on-demand pipeline against materializing the whole corpus,
  # so the headline is the RSS ratio alongside near-parity throughput.
  rss=$(jq -r '.rss_ratio * 1000 | round / 10' BENCH_stream.json)
  add_row "stream ($(jq -r .corpus_samples BENCH_stream.json) structures, $(jq -r .shards BENCH_stream.json) shards)" \
    "in-memory → streamed (samples/s, RSS ${rss}%)" \
    "$(jq -r '.in_memory.samples_per_sec | round' BENCH_stream.json)" \
    "$(jq -r '.streamed.samples_per_sec | round' BENCH_stream.json)" \
    "$(jq -r '.throughput_ratio * 100 | round / 100' BENCH_stream.json)x" \
    "—"
fi

if [[ -f BENCH_infer.json ]]; then
  # Reduced-precision serving: both arms are the batched server under
  # identical load; only the precision differs. The f16 arm is the
  # headline (it carries the 1.4x acceptance gate); tolerance is part of
  # the bench's own asserts, not re-checked here.
  add_row "infer ($(jq -r .clients BENCH_infer.json) clients, hidden $(jq -r .hidden BENCH_infer.json), max rel err $(jq -r '.arms[1].worst_rel_error' BENCH_infer.json))" \
    "f32 → f16 serving (req/s)" \
    "$(jq -r '.arms[0].median_rps * 100 | round / 100' BENCH_infer.json)" \
    "$(jq -r '.arms[1].median_rps * 100 | round / 100' BENCH_infer.json)" \
    "$(jq -r '.f16_speedup * 100 | round / 100' BENCH_infer.json)x" \
    "—"
fi

if [[ -f BENCH_pipeline.json ]]; then
  # The batch pipeline measures data-path delivery (decode + transform +
  # collate per optimizer-step batch set), not whole training steps — the
  # compute side is untouched by construction, so no cumulative column.
  add_row "pipeline ($(jq -r .atoms_per_structure BENCH_pipeline.json)-atom structures, $(jq -r .epochs BENCH_pipeline.json) epochs, cache alone $(jq -r '.speedup_cached * 100 | round / 100' BENCH_pipeline.json)x)" \
    "all-recompute → precomputed+cached (batch sets/s)" \
    "$(jq -r '.off_steps_per_sec | round' BENCH_pipeline.json)" \
    "$(jq -r '.on_steps_per_sec | round' BENCH_pipeline.json)" \
    "$(jq -r '.speedup * 100 | round / 100' BENCH_pipeline.json)x" \
    "—"
fi

[[ -n "$rows" ]] || { echo "bench_report: no BENCH_*.json artifacts found" >&2; exit 1; }

section=$(cat <<EOF
$BEGIN_MARK
## Performance trajectory (generated)

One row per \`BENCH_*.json\` artifact at the repo root — the headline
baseline-vs-optimized throughput of each hot-path PR, regenerated by
\`./scripts/bench_report.sh\` after \`cargo bench\`. Every arm pair is
asserted bit-identical by its bench before timing is trusted. The last
column compounds each optimized arm's gain with the chain of earlier
PRs it builds on, relative to the original seed hot path ("—" where the
bench measures an axis that does not compose with the seed baseline).

| bench | arms | baseline steps/s | optimized steps/s | speedup | cumulative vs seed |
|---|---|--:|--:|--:|--:|
$rows$END_MARK
EOF
)

# Drop any previous generated section, then append the fresh one.
if grep -qF "$BEGIN_MARK" EXPERIMENTS.md; then
  awk -v b="$BEGIN_MARK" -v e="$END_MARK" '
    index($0, b) { skip = 1 }
    !skip { print }
    index($0, e) { skip = 0 }
  ' EXPERIMENTS.md >EXPERIMENTS.md.tmp
  # Trim trailing blank lines left behind by the removal.
  printf '%s\n' "$(cat EXPERIMENTS.md.tmp)" >EXPERIMENTS.md
  rm -f EXPERIMENTS.md.tmp
fi
printf '\n%s\n' "$section" >>EXPERIMENTS.md
echo "bench_report: wrote trajectory table ($(printf '%s' "$rows" | wc -l | tr -d ' ') rows) to EXPERIMENTS.md"
