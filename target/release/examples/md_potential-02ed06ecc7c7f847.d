/root/repo/target/release/examples/md_potential-02ed06ecc7c7f847.d: examples/md_potential.rs

/root/repo/target/release/examples/md_potential-02ed06ecc7c7f847: examples/md_potential.rs

examples/md_potential.rs:
