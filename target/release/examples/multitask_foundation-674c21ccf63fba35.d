/root/repo/target/release/examples/multitask_foundation-674c21ccf63fba35.d: examples/multitask_foundation.rs

/root/repo/target/release/examples/multitask_foundation-674c21ccf63fba35: examples/multitask_foundation.rs

examples/multitask_foundation.rs:
