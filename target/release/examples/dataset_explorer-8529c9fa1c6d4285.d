/root/repo/target/release/examples/dataset_explorer-8529c9fa1c6d4285.d: examples/dataset_explorer.rs

/root/repo/target/release/examples/dataset_explorer-8529c9fa1c6d4285: examples/dataset_explorer.rs

examples/dataset_explorer.rs:
