/root/repo/target/release/examples/property_prediction-a3dc558cb9dbe25c.d: examples/property_prediction.rs

/root/repo/target/release/examples/property_prediction-a3dc558cb9dbe25c: examples/property_prediction.rs

examples/property_prediction.rs:
