/root/repo/target/release/examples/dbg_edges-c496604778bcff54.d: crates/datasets/examples/dbg_edges.rs

/root/repo/target/release/examples/dbg_edges-c496604778bcff54: crates/datasets/examples/dbg_edges.rs

crates/datasets/examples/dbg_edges.rs:
