/root/repo/target/release/examples/quickstart-d5bc0faec1f95cff.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-d5bc0faec1f95cff: examples/quickstart.rs

examples/quickstart.rs:
