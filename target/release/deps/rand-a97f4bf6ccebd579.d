/root/repo/target/release/deps/rand-a97f4bf6ccebd579.d: third_party/rand/src/lib.rs

/root/repo/target/release/deps/librand-a97f4bf6ccebd579.rlib: third_party/rand/src/lib.rs

/root/repo/target/release/deps/librand-a97f4bf6ccebd579.rmeta: third_party/rand/src/lib.rs

third_party/rand/src/lib.rs:
