/root/repo/target/release/deps/serde-742e870a105032c6.d: third_party/serde/src/lib.rs third_party/serde/src/de.rs third_party/serde/src/ser.rs

/root/repo/target/release/deps/serde-742e870a105032c6: third_party/serde/src/lib.rs third_party/serde/src/de.rs third_party/serde/src/ser.rs

third_party/serde/src/lib.rs:
third_party/serde/src/de.rs:
third_party/serde/src/ser.rs:
