/root/repo/target/release/deps/matsciml_nn-8f7441900b7b7e09.d: crates/nn/src/lib.rs crates/nn/src/embedding.rs crates/nn/src/layers.rs crates/nn/src/mlp.rs crates/nn/src/params.rs

/root/repo/target/release/deps/matsciml_nn-8f7441900b7b7e09: crates/nn/src/lib.rs crates/nn/src/embedding.rs crates/nn/src/layers.rs crates/nn/src/mlp.rs crates/nn/src/params.rs

crates/nn/src/lib.rs:
crates/nn/src/embedding.rs:
crates/nn/src/layers.rs:
crates/nn/src/mlp.rs:
crates/nn/src/params.rs:
