/root/repo/target/release/deps/fig2_throughput-189098d95c185dfc.d: crates/bench/src/bin/fig2_throughput.rs

/root/repo/target/release/deps/fig2_throughput-189098d95c185dfc: crates/bench/src/bin/fig2_throughput.rs

crates/bench/src/bin/fig2_throughput.rs:
