/root/repo/target/release/deps/serde_json-823f98023ba83654.d: third_party/serde_json/src/lib.rs

/root/repo/target/release/deps/serde_json-823f98023ba83654: third_party/serde_json/src/lib.rs

third_party/serde_json/src/lib.rs:
