/root/repo/target/release/deps/matsciml_graph-79b94f5324bd3d4a.d: crates/graph/src/lib.rs crates/graph/src/batch.rs crates/graph/src/csr.rs crates/graph/src/build.rs crates/graph/src/material_graph.rs

/root/repo/target/release/deps/libmatsciml_graph-79b94f5324bd3d4a.rlib: crates/graph/src/lib.rs crates/graph/src/batch.rs crates/graph/src/csr.rs crates/graph/src/build.rs crates/graph/src/material_graph.rs

/root/repo/target/release/deps/libmatsciml_graph-79b94f5324bd3d4a.rmeta: crates/graph/src/lib.rs crates/graph/src/batch.rs crates/graph/src/csr.rs crates/graph/src/build.rs crates/graph/src/material_graph.rs

crates/graph/src/lib.rs:
crates/graph/src/batch.rs:
crates/graph/src/csr.rs:
crates/graph/src/build.rs:
crates/graph/src/material_graph.rs:
