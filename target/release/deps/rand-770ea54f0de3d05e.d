/root/repo/target/release/deps/rand-770ea54f0de3d05e.d: third_party/rand/src/lib.rs

/root/repo/target/release/deps/rand-770ea54f0de3d05e: third_party/rand/src/lib.rs

third_party/rand/src/lib.rs:
