/root/repo/target/release/deps/matsciml_bench-79cad13e2dceb237.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmatsciml_bench-79cad13e2dceb237.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmatsciml_bench-79cad13e2dceb237.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
