/root/repo/target/release/deps/fig5_bandgap-56dbc3abd791866a.d: crates/bench/src/bin/fig5_bandgap.rs

/root/repo/target/release/deps/fig5_bandgap-56dbc3abd791866a: crates/bench/src/bin/fig5_bandgap.rs

crates/bench/src/bin/fig5_bandgap.rs:
