/root/repo/target/release/deps/norms-03958e8913c8a663.d: crates/nn/tests/norms.rs

/root/repo/target/release/deps/norms-03958e8913c8a663: crates/nn/tests/norms.rs

crates/nn/tests/norms.rs:
