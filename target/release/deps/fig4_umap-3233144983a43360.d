/root/repo/target/release/deps/fig4_umap-3233144983a43360.d: crates/bench/src/bin/fig4_umap.rs

/root/repo/target/release/deps/fig4_umap-3233144983a43360: crates/bench/src/bin/fig4_umap.rs

crates/bench/src/bin/fig4_umap.rs:
