/root/repo/target/release/deps/ablations-850b3fb8055cc1f5.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-850b3fb8055cc1f5: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
