/root/repo/target/release/deps/matsciml_autograd-20b51b6adf9cebc5.d: crates/autograd/src/lib.rs crates/autograd/src/backward.rs crates/autograd/src/gradcheck.rs crates/autograd/src/graph.rs crates/autograd/src/ops.rs

/root/repo/target/release/deps/matsciml_autograd-20b51b6adf9cebc5: crates/autograd/src/lib.rs crates/autograd/src/backward.rs crates/autograd/src/gradcheck.rs crates/autograd/src/graph.rs crates/autograd/src/ops.rs

crates/autograd/src/lib.rs:
crates/autograd/src/backward.rs:
crates/autograd/src/gradcheck.rs:
crates/autograd/src/graph.rs:
crates/autograd/src/ops.rs:
