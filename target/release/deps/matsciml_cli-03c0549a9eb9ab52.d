/root/repo/target/release/deps/matsciml_cli-03c0549a9eb9ab52.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/matsciml_cli-03c0549a9eb9ab52: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
