/root/repo/target/release/deps/matsciml_umap-900c95eb75eccd3b.d: crates/umap/src/lib.rs crates/umap/src/cluster.rs crates/umap/src/fuzzy.rs crates/umap/src/knn.rs crates/umap/src/layout.rs

/root/repo/target/release/deps/libmatsciml_umap-900c95eb75eccd3b.rlib: crates/umap/src/lib.rs crates/umap/src/cluster.rs crates/umap/src/fuzzy.rs crates/umap/src/knn.rs crates/umap/src/layout.rs

/root/repo/target/release/deps/libmatsciml_umap-900c95eb75eccd3b.rmeta: crates/umap/src/lib.rs crates/umap/src/cluster.rs crates/umap/src/fuzzy.rs crates/umap/src/knn.rs crates/umap/src/layout.rs

crates/umap/src/lib.rs:
crates/umap/src/cluster.rs:
crates/umap/src/fuzzy.rs:
crates/umap/src/knn.rs:
crates/umap/src/layout.rs:
