/root/repo/target/release/deps/matsciml_tensor-a06811af5065d514.d: crates/tensor/src/lib.rs crates/tensor/src/elementwise.rs crates/tensor/src/linalg.rs crates/tensor/src/matmul.rs crates/tensor/src/random.rs crates/tensor/src/reduce.rs crates/tensor/src/rows.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

/root/repo/target/release/deps/libmatsciml_tensor-a06811af5065d514.rlib: crates/tensor/src/lib.rs crates/tensor/src/elementwise.rs crates/tensor/src/linalg.rs crates/tensor/src/matmul.rs crates/tensor/src/random.rs crates/tensor/src/reduce.rs crates/tensor/src/rows.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

/root/repo/target/release/deps/libmatsciml_tensor-a06811af5065d514.rmeta: crates/tensor/src/lib.rs crates/tensor/src/elementwise.rs crates/tensor/src/linalg.rs crates/tensor/src/matmul.rs crates/tensor/src/random.rs crates/tensor/src/reduce.rs crates/tensor/src/rows.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/elementwise.rs:
crates/tensor/src/linalg.rs:
crates/tensor/src/matmul.rs:
crates/tensor/src/random.rs:
crates/tensor/src/reduce.rs:
crates/tensor/src/rows.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
