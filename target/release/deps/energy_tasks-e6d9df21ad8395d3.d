/root/repo/target/release/deps/energy_tasks-e6d9df21ad8395d3.d: tests/energy_tasks.rs

/root/repo/target/release/deps/energy_tasks-e6d9df21ad8395d3: tests/energy_tasks.rs

tests/energy_tasks.rs:
