/root/repo/target/release/deps/matsciml-7f6e3bbd7934abbb.d: crates/core/src/lib.rs

/root/repo/target/release/deps/matsciml-7f6e3bbd7934abbb: crates/core/src/lib.rs

crates/core/src/lib.rs:
