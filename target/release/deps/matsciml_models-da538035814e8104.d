/root/repo/target/release/deps/matsciml_models-da538035814e8104.d: crates/models/src/lib.rs crates/models/src/attention.rs crates/models/src/egnn.rs crates/models/src/input.rs crates/models/src/mpnn.rs

/root/repo/target/release/deps/libmatsciml_models-da538035814e8104.rlib: crates/models/src/lib.rs crates/models/src/attention.rs crates/models/src/egnn.rs crates/models/src/input.rs crates/models/src/mpnn.rs

/root/repo/target/release/deps/libmatsciml_models-da538035814e8104.rmeta: crates/models/src/lib.rs crates/models/src/attention.rs crates/models/src/egnn.rs crates/models/src/input.rs crates/models/src/mpnn.rs

crates/models/src/lib.rs:
crates/models/src/attention.rs:
crates/models/src/egnn.rs:
crates/models/src/input.rs:
crates/models/src/mpnn.rs:
