/root/repo/target/release/deps/matsciml_symmetry-963b49f4727b8e0b.d: crates/symmetry/src/lib.rs crates/symmetry/src/generate.rs crates/symmetry/src/groups.rs

/root/repo/target/release/deps/libmatsciml_symmetry-963b49f4727b8e0b.rlib: crates/symmetry/src/lib.rs crates/symmetry/src/generate.rs crates/symmetry/src/groups.rs

/root/repo/target/release/deps/libmatsciml_symmetry-963b49f4727b8e0b.rmeta: crates/symmetry/src/lib.rs crates/symmetry/src/generate.rs crates/symmetry/src/groups.rs

crates/symmetry/src/lib.rs:
crates/symmetry/src/generate.rs:
crates/symmetry/src/groups.rs:
