/root/repo/target/release/deps/end_to_end-995caf9c7b896931.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-995caf9c7b896931: tests/end_to_end.rs

tests/end_to_end.rs:
