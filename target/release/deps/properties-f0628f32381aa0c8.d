/root/repo/target/release/deps/properties-f0628f32381aa0c8.d: crates/datasets/tests/properties.rs

/root/repo/target/release/deps/properties-f0628f32381aa0c8: crates/datasets/tests/properties.rs

crates/datasets/tests/properties.rs:
