/root/repo/target/release/deps/matsciml_datasets-358d130870b91d5f.d: crates/datasets/src/lib.rs crates/datasets/src/dataloader.rs crates/datasets/src/file.rs crates/datasets/src/elements.rs crates/datasets/src/prototypes.rs crates/datasets/src/sample.rs crates/datasets/src/synthetic.rs crates/datasets/src/transform.rs

/root/repo/target/release/deps/libmatsciml_datasets-358d130870b91d5f.rlib: crates/datasets/src/lib.rs crates/datasets/src/dataloader.rs crates/datasets/src/file.rs crates/datasets/src/elements.rs crates/datasets/src/prototypes.rs crates/datasets/src/sample.rs crates/datasets/src/synthetic.rs crates/datasets/src/transform.rs

/root/repo/target/release/deps/libmatsciml_datasets-358d130870b91d5f.rmeta: crates/datasets/src/lib.rs crates/datasets/src/dataloader.rs crates/datasets/src/file.rs crates/datasets/src/elements.rs crates/datasets/src/prototypes.rs crates/datasets/src/sample.rs crates/datasets/src/synthetic.rs crates/datasets/src/transform.rs

crates/datasets/src/lib.rs:
crates/datasets/src/dataloader.rs:
crates/datasets/src/file.rs:
crates/datasets/src/elements.rs:
crates/datasets/src/prototypes.rs:
crates/datasets/src/sample.rs:
crates/datasets/src/synthetic.rs:
crates/datasets/src/transform.rs:
