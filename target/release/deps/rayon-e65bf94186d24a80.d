/root/repo/target/release/deps/rayon-e65bf94186d24a80.d: third_party/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-e65bf94186d24a80.rlib: third_party/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-e65bf94186d24a80.rmeta: third_party/rayon/src/lib.rs

third_party/rayon/src/lib.rs:
