/root/repo/target/release/deps/matsciml_nn-e504b28c64f40518.d: crates/nn/src/lib.rs crates/nn/src/embedding.rs crates/nn/src/layers.rs crates/nn/src/mlp.rs crates/nn/src/params.rs

/root/repo/target/release/deps/libmatsciml_nn-e504b28c64f40518.rlib: crates/nn/src/lib.rs crates/nn/src/embedding.rs crates/nn/src/layers.rs crates/nn/src/mlp.rs crates/nn/src/params.rs

/root/repo/target/release/deps/libmatsciml_nn-e504b28c64f40518.rmeta: crates/nn/src/lib.rs crates/nn/src/embedding.rs crates/nn/src/layers.rs crates/nn/src/mlp.rs crates/nn/src/params.rs

crates/nn/src/lib.rs:
crates/nn/src/embedding.rs:
crates/nn/src/layers.rs:
crates/nn/src/mlp.rs:
crates/nn/src/params.rs:
