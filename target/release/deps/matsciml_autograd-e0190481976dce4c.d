/root/repo/target/release/deps/matsciml_autograd-e0190481976dce4c.d: crates/autograd/src/lib.rs crates/autograd/src/backward.rs crates/autograd/src/gradcheck.rs crates/autograd/src/graph.rs crates/autograd/src/ops.rs

/root/repo/target/release/deps/libmatsciml_autograd-e0190481976dce4c.rlib: crates/autograd/src/lib.rs crates/autograd/src/backward.rs crates/autograd/src/gradcheck.rs crates/autograd/src/graph.rs crates/autograd/src/ops.rs

/root/repo/target/release/deps/libmatsciml_autograd-e0190481976dce4c.rmeta: crates/autograd/src/lib.rs crates/autograd/src/backward.rs crates/autograd/src/gradcheck.rs crates/autograd/src/graph.rs crates/autograd/src/ops.rs

crates/autograd/src/lib.rs:
crates/autograd/src/backward.rs:
crates/autograd/src/gradcheck.rs:
crates/autograd/src/graph.rs:
crates/autograd/src/ops.rs:
