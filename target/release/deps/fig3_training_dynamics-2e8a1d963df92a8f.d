/root/repo/target/release/deps/fig3_training_dynamics-2e8a1d963df92a8f.d: crates/bench/src/bin/fig3_training_dynamics.rs

/root/repo/target/release/deps/fig3_training_dynamics-2e8a1d963df92a8f: crates/bench/src/bin/fig3_training_dynamics.rs

crates/bench/src/bin/fig3_training_dynamics.rs:
