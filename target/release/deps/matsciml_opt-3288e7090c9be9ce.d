/root/repo/target/release/deps/matsciml_opt-3288e7090c9be9ce.d: crates/opt/src/lib.rs crates/opt/src/adamw.rs crates/opt/src/probe.rs crates/opt/src/schedule.rs crates/opt/src/sgd.rs

/root/repo/target/release/deps/libmatsciml_opt-3288e7090c9be9ce.rlib: crates/opt/src/lib.rs crates/opt/src/adamw.rs crates/opt/src/probe.rs crates/opt/src/schedule.rs crates/opt/src/sgd.rs

/root/repo/target/release/deps/libmatsciml_opt-3288e7090c9be9ce.rmeta: crates/opt/src/lib.rs crates/opt/src/adamw.rs crates/opt/src/probe.rs crates/opt/src/schedule.rs crates/opt/src/sgd.rs

crates/opt/src/lib.rs:
crates/opt/src/adamw.rs:
crates/opt/src/probe.rs:
crates/opt/src/schedule.rs:
crates/opt/src/sgd.rs:
