/root/repo/target/release/deps/matsciml_models-9d5ea0a38c787091.d: crates/models/src/lib.rs crates/models/src/attention.rs crates/models/src/egnn.rs crates/models/src/input.rs crates/models/src/mpnn.rs

/root/repo/target/release/deps/matsciml_models-9d5ea0a38c787091: crates/models/src/lib.rs crates/models/src/attention.rs crates/models/src/egnn.rs crates/models/src/input.rs crates/models/src/mpnn.rs

crates/models/src/lib.rs:
crates/models/src/attention.rs:
crates/models/src/egnn.rs:
crates/models/src/input.rs:
crates/models/src/mpnn.rs:
