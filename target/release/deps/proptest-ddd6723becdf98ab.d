/root/repo/target/release/deps/proptest-ddd6723becdf98ab.d: third_party/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-ddd6723becdf98ab.rlib: third_party/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-ddd6723becdf98ab.rmeta: third_party/proptest/src/lib.rs

third_party/proptest/src/lib.rs:
