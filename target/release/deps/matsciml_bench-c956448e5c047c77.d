/root/repo/target/release/deps/matsciml_bench-c956448e5c047c77.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/matsciml_bench-c956448e5c047c77: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
