/root/repo/target/release/deps/matsciml_opt-10e6f7c9ddf3ee08.d: crates/opt/src/lib.rs crates/opt/src/adamw.rs crates/opt/src/probe.rs crates/opt/src/schedule.rs crates/opt/src/sgd.rs

/root/repo/target/release/deps/matsciml_opt-10e6f7c9ddf3ee08: crates/opt/src/lib.rs crates/opt/src/adamw.rs crates/opt/src/probe.rs crates/opt/src/schedule.rs crates/opt/src/sgd.rs

crates/opt/src/lib.rs:
crates/opt/src/adamw.rs:
crates/opt/src/probe.rs:
crates/opt/src/schedule.rs:
crates/opt/src/sgd.rs:
