/root/repo/target/release/deps/matsciml_umap-e8954bfb8f3e4212.d: crates/umap/src/lib.rs crates/umap/src/cluster.rs crates/umap/src/fuzzy.rs crates/umap/src/knn.rs crates/umap/src/layout.rs

/root/repo/target/release/deps/matsciml_umap-e8954bfb8f3e4212: crates/umap/src/lib.rs crates/umap/src/cluster.rs crates/umap/src/fuzzy.rs crates/umap/src/knn.rs crates/umap/src/layout.rs

crates/umap/src/lib.rs:
crates/umap/src/cluster.rs:
crates/umap/src/fuzzy.rs:
crates/umap/src/knn.rs:
crates/umap/src/layout.rs:
