/root/repo/target/release/deps/properties-d49dc34b777cd07e.d: crates/tensor/tests/properties.rs

/root/repo/target/release/deps/properties-d49dc34b777cd07e: crates/tensor/tests/properties.rs

crates/tensor/tests/properties.rs:
