/root/repo/target/release/deps/matsciml_symmetry-d352a1b62cd88acc.d: crates/symmetry/src/lib.rs crates/symmetry/src/generate.rs crates/symmetry/src/groups.rs

/root/repo/target/release/deps/matsciml_symmetry-d352a1b62cd88acc: crates/symmetry/src/lib.rs crates/symmetry/src/generate.rs crates/symmetry/src/groups.rs

crates/symmetry/src/lib.rs:
crates/symmetry/src/generate.rs:
crates/symmetry/src/groups.rs:
