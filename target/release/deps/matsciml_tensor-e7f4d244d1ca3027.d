/root/repo/target/release/deps/matsciml_tensor-e7f4d244d1ca3027.d: crates/tensor/src/lib.rs crates/tensor/src/elementwise.rs crates/tensor/src/linalg.rs crates/tensor/src/matmul.rs crates/tensor/src/random.rs crates/tensor/src/reduce.rs crates/tensor/src/rows.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

/root/repo/target/release/deps/matsciml_tensor-e7f4d244d1ca3027: crates/tensor/src/lib.rs crates/tensor/src/elementwise.rs crates/tensor/src/linalg.rs crates/tensor/src/matmul.rs crates/tensor/src/random.rs crates/tensor/src/reduce.rs crates/tensor/src/rows.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/elementwise.rs:
crates/tensor/src/linalg.rs:
crates/tensor/src/matmul.rs:
crates/tensor/src/random.rs:
crates/tensor/src/reduce.rs:
crates/tensor/src/rows.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
