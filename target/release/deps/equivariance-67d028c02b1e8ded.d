/root/repo/target/release/deps/equivariance-67d028c02b1e8ded.d: crates/models/tests/equivariance.rs

/root/repo/target/release/deps/equivariance-67d028c02b1e8ded: crates/models/tests/equivariance.rs

crates/models/tests/equivariance.rs:
