/root/repo/target/release/deps/table1_multitask-4a07cadb71361ee7.d: crates/bench/src/bin/table1_multitask.rs

/root/repo/target/release/deps/table1_multitask-4a07cadb71361ee7: crates/bench/src/bin/table1_multitask.rs

crates/bench/src/bin/table1_multitask.rs:
