/root/repo/target/release/deps/criterion-9e4cc1905ad4bd1e.d: third_party/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-9e4cc1905ad4bd1e.rlib: third_party/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-9e4cc1905ad4bd1e.rmeta: third_party/criterion/src/lib.rs

third_party/criterion/src/lib.rs:
