/root/repo/target/release/deps/matsciml-aee69464b032a4ed.d: crates/core/src/lib.rs

/root/repo/target/release/deps/libmatsciml-aee69464b032a4ed.rlib: crates/core/src/lib.rs

/root/repo/target/release/deps/libmatsciml-aee69464b032a4ed.rmeta: crates/core/src/lib.rs

crates/core/src/lib.rs:
