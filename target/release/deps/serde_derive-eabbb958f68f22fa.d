/root/repo/target/release/deps/serde_derive-eabbb958f68f22fa.d: third_party/serde_derive/src/lib.rs

/root/repo/target/release/deps/serde_derive-eabbb958f68f22fa: third_party/serde_derive/src/lib.rs

third_party/serde_derive/src/lib.rs:
