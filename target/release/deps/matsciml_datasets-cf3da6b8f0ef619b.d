/root/repo/target/release/deps/matsciml_datasets-cf3da6b8f0ef619b.d: crates/datasets/src/lib.rs crates/datasets/src/dataloader.rs crates/datasets/src/file.rs crates/datasets/src/elements.rs crates/datasets/src/prototypes.rs crates/datasets/src/sample.rs crates/datasets/src/synthetic.rs crates/datasets/src/transform.rs

/root/repo/target/release/deps/matsciml_datasets-cf3da6b8f0ef619b: crates/datasets/src/lib.rs crates/datasets/src/dataloader.rs crates/datasets/src/file.rs crates/datasets/src/elements.rs crates/datasets/src/prototypes.rs crates/datasets/src/sample.rs crates/datasets/src/synthetic.rs crates/datasets/src/transform.rs

crates/datasets/src/lib.rs:
crates/datasets/src/dataloader.rs:
crates/datasets/src/file.rs:
crates/datasets/src/elements.rs:
crates/datasets/src/prototypes.rs:
crates/datasets/src/sample.rs:
crates/datasets/src/synthetic.rs:
crates/datasets/src/transform.rs:
