/root/repo/target/release/deps/open_matsciml-bac9050bddfbd9b8.d: src/lib.rs

/root/repo/target/release/deps/open_matsciml-bac9050bddfbd9b8: src/lib.rs

src/lib.rs:
