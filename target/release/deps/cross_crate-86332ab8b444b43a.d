/root/repo/target/release/deps/cross_crate-86332ab8b444b43a.d: tests/cross_crate.rs

/root/repo/target/release/deps/cross_crate-86332ab8b444b43a: tests/cross_crate.rs

tests/cross_crate.rs:
