/root/repo/target/release/deps/learnability-5765d18f9cbfb5ac.d: crates/symmetry/tests/learnability.rs

/root/repo/target/release/deps/learnability-5765d18f9cbfb5ac: crates/symmetry/tests/learnability.rs

crates/symmetry/tests/learnability.rs:
