/root/repo/target/release/deps/criterion-8747f5f79f2f76d3.d: third_party/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-8747f5f79f2f76d3: third_party/criterion/src/lib.rs

third_party/criterion/src/lib.rs:
