/root/repo/target/release/deps/serde_json-93182b6252d3a36d.d: third_party/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-93182b6252d3a36d.rlib: third_party/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-93182b6252d3a36d.rmeta: third_party/serde_json/src/lib.rs

third_party/serde_json/src/lib.rs:
