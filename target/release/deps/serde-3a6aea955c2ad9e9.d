/root/repo/target/release/deps/serde-3a6aea955c2ad9e9.d: third_party/serde/src/lib.rs third_party/serde/src/de.rs third_party/serde/src/ser.rs

/root/repo/target/release/deps/libserde-3a6aea955c2ad9e9.rlib: third_party/serde/src/lib.rs third_party/serde/src/de.rs third_party/serde/src/ser.rs

/root/repo/target/release/deps/libserde-3a6aea955c2ad9e9.rmeta: third_party/serde/src/lib.rs third_party/serde/src/de.rs third_party/serde/src/ser.rs

third_party/serde/src/lib.rs:
third_party/serde/src/de.rs:
third_party/serde/src/ser.rs:
