/root/repo/target/release/deps/matsciml_graph-45faae0c5f57b36c.d: crates/graph/src/lib.rs crates/graph/src/batch.rs crates/graph/src/csr.rs crates/graph/src/build.rs crates/graph/src/material_graph.rs

/root/repo/target/release/deps/matsciml_graph-45faae0c5f57b36c: crates/graph/src/lib.rs crates/graph/src/batch.rs crates/graph/src/csr.rs crates/graph/src/build.rs crates/graph/src/material_graph.rs

crates/graph/src/lib.rs:
crates/graph/src/batch.rs:
crates/graph/src/csr.rs:
crates/graph/src/build.rs:
crates/graph/src/material_graph.rs:
