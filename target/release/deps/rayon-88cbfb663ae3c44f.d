/root/repo/target/release/deps/rayon-88cbfb663ae3c44f.d: third_party/rayon/src/lib.rs

/root/repo/target/release/deps/rayon-88cbfb663ae3c44f: third_party/rayon/src/lib.rs

third_party/rayon/src/lib.rs:
