/root/repo/target/release/deps/matsciml_train-540524ee8f990c3c.d: crates/train/src/lib.rs crates/train/src/collate.rs crates/train/src/ddp.rs crates/train/src/forcefield.rs crates/train/src/metrics.rs crates/train/src/model.rs crates/train/src/task.rs crates/train/src/sweep.rs crates/train/src/throughput.rs crates/train/src/trainer.rs

/root/repo/target/release/deps/matsciml_train-540524ee8f990c3c: crates/train/src/lib.rs crates/train/src/collate.rs crates/train/src/ddp.rs crates/train/src/forcefield.rs crates/train/src/metrics.rs crates/train/src/model.rs crates/train/src/task.rs crates/train/src/sweep.rs crates/train/src/throughput.rs crates/train/src/trainer.rs

crates/train/src/lib.rs:
crates/train/src/collate.rs:
crates/train/src/ddp.rs:
crates/train/src/forcefield.rs:
crates/train/src/metrics.rs:
crates/train/src/model.rs:
crates/train/src/task.rs:
crates/train/src/sweep.rs:
crates/train/src/throughput.rs:
crates/train/src/trainer.rs:
