/root/repo/target/release/deps/proptest-e0de9e30846bb75c.d: third_party/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-e0de9e30846bb75c: third_party/proptest/src/lib.rs

third_party/proptest/src/lib.rs:
