/root/repo/target/release/deps/gradcheck_ops-c2661134d9e75839.d: crates/autograd/tests/gradcheck_ops.rs

/root/repo/target/release/deps/gradcheck_ops-c2661134d9e75839: crates/autograd/tests/gradcheck_ops.rs

crates/autograd/tests/gradcheck_ops.rs:
