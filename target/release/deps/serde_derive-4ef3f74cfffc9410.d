/root/repo/target/release/deps/serde_derive-4ef3f74cfffc9410.d: third_party/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-4ef3f74cfffc9410.so: third_party/serde_derive/src/lib.rs

third_party/serde_derive/src/lib.rs:
