/root/repo/target/release/deps/properties-042e02b7be1e393f.d: crates/umap/tests/properties.rs

/root/repo/target/release/deps/properties-042e02b7be1e393f: crates/umap/tests/properties.rs

crates/umap/tests/properties.rs:
