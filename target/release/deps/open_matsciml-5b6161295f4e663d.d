/root/repo/target/release/deps/open_matsciml-5b6161295f4e663d.d: src/lib.rs

/root/repo/target/release/deps/libopen_matsciml-5b6161295f4e663d.rlib: src/lib.rs

/root/repo/target/release/deps/libopen_matsciml-5b6161295f4e663d.rmeta: src/lib.rs

src/lib.rs:
