/root/repo/target/release/deps/fig6_pretrain_curve-2ec75fa9c5a30632.d: crates/bench/src/bin/fig6_pretrain_curve.rs

/root/repo/target/release/deps/fig6_pretrain_curve-2ec75fa9c5a30632: crates/bench/src/bin/fig6_pretrain_curve.rs

crates/bench/src/bin/fig6_pretrain_curve.rs:
