//! Semantic dataset exploration (the paper's Section 5.3 workflow): embed
//! structures from every supported dataset with a shared encoder, project
//! with UMAP, and quantify which datasets overlap and which cover unique
//! regions of structure space — the analysis that tells you *what data a
//! foundation model is missing*.
//!
//! ```text
//! cargo run --release --example dataset_explorer
//! ```

use matsciml::prelude::*;

fn main() {
    // An untrained encoder already induces a geometry-sensitive embedding;
    // the fig4 bench binary uses the pretrained one. Examples stay fast.
    let model = TaskModel::egnn(
        EgnnConfig::small(16),
        &[TaskHeadConfig::symmetry(32, 1, 32)],
        0,
    );
    let pipeline = Compose::standard(4.5, Some(12));

    let per_dataset = 80usize;
    let sources: Vec<(&str, Box<dyn Dataset>)> = vec![
        ("materials-project", Box::new(SyntheticMaterialsProject::new(per_dataset, 1))),
        ("carolina", Box::new(SyntheticCarolina::new(per_dataset, 2))),
        ("oc20", Box::new(SyntheticOc20::new(per_dataset, 3))),
        ("oc22", Box::new(SyntheticOc22::new(per_dataset, 4))),
        ("lips", Box::new(SyntheticLips::new(per_dataset, 5))),
    ];

    println!("embedding {per_dataset} structures from each of 5 datasets…");
    let mut all: Vec<f32> = Vec::new();
    let mut labels: Vec<usize> = Vec::new();
    for (li, (name, ds)) in sources.iter().enumerate() {
        let samples: Vec<Sample> = (0..per_dataset).map(|i| pipeline.apply(ds.sample(i))).collect();
        let emb = model.embed(&samples);
        println!("  {name}: {} structures → {}-d embeddings", emb.rows(), emb.cols());
        all.extend_from_slice(emb.as_slice());
        labels.extend(std::iter::repeat(li).take(per_dataset));
    }
    let n = labels.len();
    let dim = all.len() / n;
    let data = Tensor::from_vec(&[n, dim], all).unwrap();

    println!("\nprojecting with UMAP (min_dist = 0.05, as in the paper)…");
    let umap = Umap::new(UmapConfig {
        n_neighbors: 15,
        min_dist: 0.05,
        n_epochs: 100,
        seed: 9,
        ..UmapConfig::default()
    });
    let fitted = umap.fit(&data);
    let emb2d = fitted.embedding().clone();

    let sil = silhouette(&emb2d, &labels);
    let sep = centroid_separation(&emb2d, &labels);
    println!("silhouette over dataset labels: {sil:.3}");
    println!("min inter-centroid / max spread: {sep:.3}");

    // Which dataset is most isolated? Nearest-centroid analysis.
    let names = ["materials-project", "carolina", "oc20", "oc22", "lips"];
    let mut centroids = vec![(0.0f32, 0.0f32); 5];
    for (i, &l) in labels.iter().enumerate() {
        centroids[l].0 += emb2d.at2(i, 0) / per_dataset as f32;
        centroids[l].1 += emb2d.at2(i, 1) / per_dataset as f32;
    }
    println!("\nnearest neighbor in embedding space:");
    for a in 0..5 {
        let (mut best, mut bd) = (a, f32::INFINITY);
        for b in 0..5 {
            if a != b {
                let d = ((centroids[a].0 - centroids[b].0).powi(2)
                    + (centroids[a].1 - centroids[b].1).powi(2))
                .sqrt();
                if d < bd {
                    bd = d;
                    best = b;
                }
            }
        }
        println!("  {:<18} ↔ {:<18} (distance {bd:.2})", names[a], names[best]);
    }
    // Out-of-sample: drop a *new* candidate structure onto the map.
    let candidate_ds = SyntheticCarolina::new(200, 77);
    let candidate = pipeline.apply(candidate_ds.sample(199));
    let cand_emb = model.embed(std::slice::from_ref(&candidate));
    let placed = fitted.transform(&cand_emb);
    let (mut best, mut bd) = (0usize, f32::INFINITY);
    for (l, c) in centroids.iter().enumerate() {
        let d = ((placed.at2(0, 0) - c.0).powi(2) + (placed.at2(0, 1) - c.1).powi(2)).sqrt();
        if d < bd {
            bd = d;
            best = l;
        }
    }
    println!(
        "\nout-of-sample: a fresh Carolina candidate lands at ({:.2}, {:.2}), nearest dataset region: {}",
        placed.at2(0, 0),
        placed.at2(0, 1),
        names[best]
    );

    println!("\ninterpretation: overlapping datasets are redundant for foundation-model\ntraining; isolated clusters mark coverage a balanced data mix must keep.");
}
