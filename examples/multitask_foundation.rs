//! The foundation-model workflow end to end, at example scale:
//!
//! 1. **pretrain** an E(n)-GNN encoder on synthetic symmetry point clouds
//!    (no chemistry, arbitrary data scale — the paper's Section 3.1 task);
//! 2. **transfer** the encoder into a multi-task, multi-dataset model
//!    (Materials Project band gap + Fermi energy + formation energy +
//!    stability, joint with Carolina formation energy);
//! 3. **fine-tune** at η_base/10 and compare against from-scratch training
//!    — the paper's Table 1 comparison, in miniature.
//!
//! ```text
//! cargo run --release --example multitask_foundation
//! ```

use matsciml::prelude::*;

fn multitask_heads(hidden: usize) -> Vec<TaskHeadConfig> {
    vec![
        TaskHeadConfig::regression(DatasetId::MaterialsProject, TargetKind::BandGap, hidden, 2),
        TaskHeadConfig::regression(DatasetId::MaterialsProject, TargetKind::FermiEnergy, hidden, 2),
        TaskHeadConfig::regression(DatasetId::MaterialsProject, TargetKind::FormationEnergy, hidden, 2),
        TaskHeadConfig::binary(DatasetId::MaterialsProject, TargetKind::Stability, hidden, 2),
        TaskHeadConfig::regression(DatasetId::Carolina, TargetKind::FormationEnergy, hidden, 2),
    ]
}

fn main() {
    let encoder_cfg = EgnnConfig::small(16);

    // ---- Stage 1: symmetry pretraining ------------------------------
    println!("=== stage 1: symmetry pretraining (32 point groups) ===");
    let sym = SymmetryDataset::new(1024, 3);
    let sym_pipeline = Compose::standard(1.2, Some(16));
    let sym_train = DataLoader::new(&sym, Some(&sym_pipeline), Split::Train, 0.1, 32, 2);
    let sym_val = DataLoader::new(&sym, Some(&sym_pipeline), Split::Val, 0.1, 32, 2);
    let mut pretrained = TaskModel::egnn(
        encoder_cfg,
        &[TaskHeadConfig::symmetry(32, 2, sym.num_classes())],
        10,
    );
    let trainer = Trainer::new(TrainConfig {
        world_size: 8,
        per_rank_batch: 4,
        steps: 120,
        base_lr: 5e-4,
        warmup_epochs: 1,
        eval_every: 40,
        ..Default::default()
    });
    let log = trainer.train(&mut pretrained, &sym_train, Some(&sym_val));
    let acc = log.final_val().and_then(|v| v.get("symmetry/sym/acc")).unwrap();
    println!("pretraining point-group accuracy: {:.1}% (chance = 3.1%)\n", acc * 100.0);

    // ---- Stage 2+3: multi-task fine-tune vs scratch ------------------
    println!("=== stage 2: multi-task, multi-dataset fine-tuning ===");
    let merged = ConcatDataset::new(vec![
        Box::new(SyntheticMaterialsProject::new(512, 4)),
        Box::new(SyntheticCarolina::new(256, 5)),
    ]);
    let pipeline = Compose::standard(4.5, Some(12));
    let train_dl = DataLoader::new(&merged, Some(&pipeline), Split::Train, 0.2, 32, 3);
    let val_dl = DataLoader::new(&merged, Some(&pipeline), Split::Val, 0.2, 32, 3);

    let run = |from_pretrained: bool| -> MetricMap {
        let mut model = TaskModel::egnn(encoder_cfg, &multitask_heads(32), 11);
        let base_lr = if from_pretrained {
            model.load_pretrained_encoder(&pretrained);
            1e-4 // η_base / 10: the paper's fine-tuning rule
        } else {
            1e-3
        };
        let trainer = Trainer::new(TrainConfig {
            world_size: 4,
            per_rank_batch: 8,
            steps: 120,
            base_lr,
            warmup_epochs: 1,
            eval_every: 30,
            ..Default::default()
        });
        let log = trainer.train(&mut model, &train_dl, Some(&val_dl));
        log.final_val().cloned().unwrap_or_default()
    };

    let fine = run(true);
    let scratch = run(false);

    println!("\n{:<36} {:>11} {:>11}", "metric", "pretrained", "scratch");
    for key in [
        "materials-project/band_gap/mae",
        "materials-project/fermi/mae",
        "materials-project/e_form/mae",
        "materials-project/stability/bce",
        "carolina/e_form/mae",
    ] {
        println!(
            "{:<36} {:>11.3} {:>11.3}",
            key,
            fine.get(key).unwrap_or(f32::NAN),
            scratch.get(key).unwrap_or(f32::NAN)
        );
    }
    println!("\n(the paper's Table 1 finding: pretraining helps most in exactly this joint setting)");
}
