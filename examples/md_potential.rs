//! Train a machine-learned interatomic potential on the LiPS trajectory
//! surrogate: per-frame energies plus per-atom forces, with forces read
//! from the E(n)-GNN's equivariant coordinate stream.
//!
//! ```text
//! cargo run --release --example md_potential
//! ```

use matsciml::prelude::*;

fn main() {
    // LiPS: thermal-jitter frames around a fixed Li₆PS₄ cluster, labeled
    // with harmonic energies and analytic forces F = −k Δx.
    let ds = SyntheticLips::new(512, 0);
    let pipeline = Compose::standard(4.5, Some(12));

    let train: Vec<Sample> = (0..384).map(|i| pipeline.apply(ds.sample(i))).collect();
    let test: Vec<Sample> = (384..448).map(|i| pipeline.apply(ds.sample(i))).collect();
    println!(
        "LiPS trajectory: {} training frames, {} test frames, {} atoms each",
        train.len(),
        test.len(),
        train[0].graph.num_nodes()
    );

    let mut model = ForceFieldModel::new(EgnnConfig::small(16), 32, 2, 0);
    println!("model: {} parameters\n", model.params.num_scalars());

    let batches: Vec<Vec<Sample>> = train.chunks(16).map(|c| c.to_vec()).collect();
    let eval = |model: &ForceFieldModel, samples: &[Sample]| -> (f32, f32) {
        let mut ctx = ForwardCtx::eval();
        let (_g, _loss, m) = model.loss(samples, &mut ctx);
        (
            m.get("lips/energy/mae").unwrap(),
            m.get("lips/force/mae").unwrap(),
        )
    };

    let (e0, f0) = eval(&model, &test);
    println!("before training: energy MAE {e0:.4} eV   force MAE {f0:.4} eV/Å");

    for round in 1..=4 {
        model.fit(&batches, 2e-3, 2);
        let (e, f) = eval(&model, &test);
        println!("after {:>2} epochs:  energy MAE {e:.4} eV   force MAE {f:.4} eV/Å", round * 2);
    }

    // Show predicted vs true forces on one held-out atom.
    let (_, forces) = model.predict(&test[..1]);
    let truth = test[0].forces.as_ref().unwrap();
    println!("\nper-atom forces of one held-out frame (eV/Å):");
    println!("{:>4} {:>24} {:>24}", "atom", "predicted", "true");
    for i in 0..truth.len().min(5) {
        println!(
            "{:>4} ({:>6.2},{:>6.2},{:>6.2}) ({:>6.2},{:>6.2},{:>6.2})",
            i,
            forces.at2(i, 0),
            forces.at2(i, 1),
            forces.at2(i, 2),
            truth[i].x,
            truth[i].y,
            truth[i].z,
        );
    }
    let (ef, ff) = eval(&model, &test);
    assert!(ef.is_finite() && ff.is_finite());
}
