//! Quickstart: train an E(n)-GNN to predict band gaps on the synthetic
//! Materials Project, then score it on held-out structures.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use matsciml::prelude::*;

fn main() {
    // 1. A dataset. Synthetic Materials Project surrogate: procedurally
    //    generated crystals with learnable property functionals.
    let dataset = SyntheticMaterialsProject::new(1024, 0);

    // 2. A transform pipeline (paper Fig. 1): center each structure, then
    //    wire a radius graph (4.5 Å cutoff, ≤12 neighbors).
    let pipeline = Compose::standard(4.5, Some(12));

    // 3. Loaders over a train/val split.
    let train_dl = DataLoader::new(&dataset, Some(&pipeline), Split::Train, 0.2, 32, 0);
    let val_dl = DataLoader::new(&dataset, Some(&pipeline), Split::Val, 0.2, 32, 0);
    println!(
        "dataset: {} train / {} val structures",
        train_dl.len(),
        val_dl.len()
    );

    // 4. A task model: E(n)-GNN encoder + one band-gap regression head.
    let mut model = TaskModel::egnn(
        EgnnConfig::small(24),
        &[TaskHeadConfig::regression(
            DatasetId::MaterialsProject,
            TargetKind::BandGap,
            48,
            3,
        )],
        0,
    );
    println!(
        "model: {} parameters across {} tensors",
        model.params.num_scalars(),
        model.params.len()
    );

    // 5. Train with the paper's recipe: AdamW, warmup + exponential decay,
    //    DDP over 4 simulated ranks.
    let trainer = Trainer::new(TrainConfig {
        world_size: 4,
        per_rank_batch: 8,
        steps: 150,
        base_lr: 1e-3,
        eval_every: 25,
        ..Default::default()
    });
    let log = trainer.train(&mut model, &train_dl, Some(&val_dl));

    // 6. Inspect the run.
    for r in log.records.iter().filter(|r| r.val.is_some()) {
        let mae = r.val.as_ref().unwrap().get("materials-project/band_gap/mae");
        println!(
            "step {:>4}  lr {:.2e}  train loss {:.3}  val MAE {:.3} eV",
            r.step,
            r.lr,
            r.train.get("loss").unwrap_or(f32::NAN),
            mae.unwrap_or(f32::NAN),
        );
    }
    let final_mae = log
        .final_val()
        .and_then(|v| v.get("materials-project/band_gap/mae"))
        .unwrap();
    println!("\nfinal band-gap MAE: {final_mae:.3} eV");
    assert!(final_mae.is_finite());
}
