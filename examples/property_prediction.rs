//! Property prediction on specific crystal structures: train a formation-
//! energy model on the Carolina surrogate (cubic crystals), then inspect
//! its predictions structure by structure — the workflow a materials
//! screening pipeline would run.
//!
//! ```text
//! cargo run --release --example property_prediction
//! ```

use matsciml::datasets::elements;
use matsciml::prelude::*;

fn formula(graph: &MaterialGraph) -> String {
    use std::collections::BTreeMap;
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for &s in &graph.species {
        *counts.entry(elements::element(s).symbol).or_default() += 1;
    }
    counts
        .into_iter()
        .map(|(sym, c)| if c > 1 { format!("{sym}{c}") } else { sym.to_string() })
        .collect()
}

fn main() {
    let dataset = SyntheticCarolina::new(1024, 7);
    let pipeline = Compose::standard(4.5, Some(12));
    let train_dl = DataLoader::new(&dataset, Some(&pipeline), Split::Train, 0.2, 32, 1);
    let val_dl = DataLoader::new(&dataset, Some(&pipeline), Split::Val, 0.2, 32, 1);

    let mut model = TaskModel::egnn(
        EgnnConfig::small(24),
        &[TaskHeadConfig::regression(
            DatasetId::Carolina,
            TargetKind::FormationEnergy,
            48,
            3,
        )],
        1,
    );

    println!("training formation-energy model on cubic crystals…");
    let trainer = Trainer::new(TrainConfig {
        world_size: 2,
        per_rank_batch: 16,
        steps: 200,
        base_lr: 1e-3,
        eval_every: 50,
        ..Default::default()
    });
    let log = trainer.train(&mut model, &train_dl, Some(&val_dl));
    let mae = log
        .final_val()
        .and_then(|v| v.get("carolina/e_form/mae"))
        .unwrap();
    println!("validation MAE: {mae:.3} eV/atom\n");

    // Per-structure screening report on ten held-out crystals.
    println!(
        "{:<14} {:>7} {:>12} {:>12} {:>8}",
        "formula", "atoms", "E_form true", "E_form pred", "|err|"
    );
    let samples: Vec<Sample> = (0..10).map(|i| val_dl.get(i)).collect();
    let preds = model.predict(&samples, 0);
    let mut ranked: Vec<(f32, String)> = Vec::new();
    for (i, s) in samples.iter().enumerate() {
        let truth = s.targets.formation_energy.unwrap();
        let pred = preds.at2(i, 0);
        println!(
            "{:<14} {:>7} {:>12.3} {:>12.3} {:>8.3}",
            formula(&s.graph),
            s.graph.num_nodes(),
            truth,
            pred,
            (pred - truth).abs()
        );
        ranked.push((pred, formula(&s.graph)));
    }
    ranked.sort_by(|a, b| a.0.total_cmp(&b.0));
    println!(
        "\nmost stable candidate by predicted E_form: {} ({:+.3} eV/atom)",
        ranked[0].1, ranked[0].0
    );
}
